"""Frozen pre-kernel simulator, kept as a machine-normalised perf reference.

This module is a verbatim snapshot of ``src/repro/sim/simulator.py`` as it
stood *before* the replay loops were unified around :mod:`repro.sim.kernel`
(the last pre-kernel commit).  The perf benchmark
(:mod:`benchmarks.test_bench_perf_throughput`) runs this reference and the
live simulator back-to-back on the same workload in the same process and
reports ``kernel.overhead_ratio_vs_pre_kernel`` — pre-kernel throughput over
kernel throughput — so the <=1.05 gate in ``scripts/check_bench.py`` measures
the refactor itself, not drift in the benchmark machine.

Do not modernise this file: its value is that it does not change.  It still
imports only stable subsystem APIs (``DeliverySession``, ``FETCH_OK``,
``stale_quality``, the hierarchy/streaming engines), so it keeps running
against the live package without tracking it.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.store import CacheStore
from repro.exceptions import SimulationError
from repro.network.measurement import BandwidthMeasurementLog, PassiveEstimator
from repro.network.topology import DeliveryTopology
from repro.obs.profiling import StageProfiler
from repro.obs.timeline import MetricsTimeline
from repro.obs.tracing import ObservedCacheStore, TraceSink
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.events import (
    AuxiliarySchedule,
    ReactiveRekeyer,
    build_remeasurement_events,
)
from repro.sim.faults import (
    FETCH_OK,
    FaultInjector,
    FaultReport,
    stale_quality,
)
from repro.sim.hierarchy import HierarchyEngine, HierarchyReport
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.streaming import StreamingDeliveryEngine, StreamingReport
from repro.streaming.session import DeliverySession
from repro.trace.columnar import ColumnarTrace
from repro.workload.gismo import Workload


#: Replay-path names accepted by :meth:`ProxyCacheSimulator.run`'s
#: ``replay`` argument (``"auto"`` resolves to one of the other three).
REPLAY_PATHS = ("auto", "event", "fast", "columnar-event")

#: Entropy tag mixed into the client-cloud generator's seed so last-mile
#: construction and per-request last-mile draws never collide with the
#: request stream (bare config seed) or the re-measurement stream.
_CLIENT_CLOUD_STREAM_TAG = 0x434C49


@dataclass
class SimulationResult:
    """Everything a single simulation run produces.

    ``replay_path`` records which replay loop ran (``"event"``, ``"fast"``,
    or ``"columnar-event"``); ``used_fast_path`` is kept as the legacy
    boolean view of the same fact.  ``auxiliary_events_fired`` counts typed
    periodic-event firings (e.g. bandwidth re-measurements), and
    ``measurement_log`` carries their per-server sample statistics when the
    run had re-measurement configured.  ``reactive_shifts`` /
    ``reactive_rekeys`` count the threshold crossings and heap entries
    re-keyed by the reactive hook
    (:attr:`~repro.sim.config.SimulationConfig.reactive_threshold`);
    ``reactive_suppressed`` counts crossings swallowed by the per-server
    re-key budget
    (:attr:`~repro.sim.config.SimulationConfig.reactive_rekey_cap`), and
    ``reactive_rekeys_by_server`` the per-server re-key counts that budget
    bounds.  ``fault_report`` carries the whole-run fault accounting
    (episode counts, retries, stale serves, estimate recovery times) when
    the run had :attr:`~repro.sim.config.SimulationConfig.faults`
    enabled; the measurement-phase view (availability, failed / stale /
    retried requests) lives on :attr:`metrics`.  ``streaming_report``
    carries the QoE accounting (startup delay, rebuffer ratio, delivered
    quality, abandonment) when the run had
    :attr:`~repro.sim.config.SimulationConfig.streaming` enabled.
    ``hierarchy_report`` carries the per-tier hit/byte accounting (tier-
    absorbed vs origin bytes, sibling hits) when the run had
    :attr:`~repro.sim.config.SimulationConfig.hierarchy` enabled — in
    which case ``final_cache_occupancy`` / ``final_cached_objects``
    aggregate over every tier store in the fleet and ``heap_statistics``
    is ``None`` (each tier owns its own policy heap).

    The observability fields (:mod:`repro.obs`) are populated when the
    config carries an
    :attr:`~repro.sim.config.SimulationConfig.observability` block:
    ``timeline`` is the finished windowed
    :class:`~repro.obs.timeline.MetricsTimeline` (path-identical across
    all four replay loops), and ``profile`` the per-stage wall-clock
    report of :class:`~repro.obs.profiling.StageProfiler`.
    ``heap_statistics`` is recorded on every run whose policy exposes it
    (the heap-backed paper policies do): peak/live/stale entry counts and
    compaction totals, so heap health is visible per run rather than
    only in the benchmark suite.
    """

    metrics: SimulationMetrics
    policy_name: str
    config: SimulationConfig
    final_cache_occupancy: float
    final_cached_objects: int
    warmup_requests: int
    used_fast_path: bool = False
    replay_path: str = "fast"
    auxiliary_events_fired: int = 0
    measurement_log: Optional[BandwidthMeasurementLog] = None
    reactive_shifts: int = 0
    reactive_rekeys: int = 0
    reactive_suppressed: int = 0
    reactive_rekeys_by_server: Dict[int, int] = field(default_factory=dict)
    fault_report: Optional[FaultReport] = None
    streaming_report: Optional[StreamingReport] = None
    hierarchy_report: Optional[HierarchyReport] = None
    timeline: Optional[MetricsTimeline] = None
    profile: Optional[Dict[str, Dict[str, float]]] = None
    heap_statistics: Optional[Dict[str, int]] = None

    def as_dict(self) -> Dict[str, float]:
        """Flatten result and headline metrics into one dictionary."""
        data = self.metrics.as_dict()
        data.update(
            {
                "final_cache_occupancy": self.final_cache_occupancy,
                "final_cached_objects": float(self.final_cached_objects),
                "warmup_requests": float(self.warmup_requests),
            }
        )
        return data


def _dense_id_bound(trace: ColumnarTrace) -> Optional[int]:
    """Largest object id when the trace's ids are dense and non-negative.

    Dense means the ids fit a modest lookup table (bounded by a small
    multiple of the trace length) — true for generated and ingested
    catalogs, whose ids are 0..N-1.  Returns ``None`` otherwise, sending
    the replay down the generic loop.
    """
    ids = trace.object_ids_array
    if ids.size == 0:
        return 0
    min_id = int(ids.min())
    max_id = int(ids.max())
    if min_id >= 0 and max_id < 4 * ids.size + 1024:
        return max_id
    return None


class ProxyCacheSimulator:
    """Replay a workload against one policy-managed proxy cache."""

    def __init__(self, workload: Workload, config: Optional[SimulationConfig] = None):
        self.workload = workload
        self.config = config or SimulationConfig()

    def build_topology(self, rng: np.random.Generator) -> DeliveryTopology:
        """Draw per-server base bandwidths and assemble the topology.

        When the config carries a
        :class:`~repro.sim.config.ClientCloudConfig`, the client cloud's
        last-mile paths are built here too — from a dedicated generator, so
        attaching a cloud never perturbs the origin-path draws (the
        unconstrained-cloud bit-identity of ``tests/test_sim_clients.py``).
        """
        topology = DeliveryTopology.build(
            catalog=self.workload.catalog,
            cache_capacity_kb=self.config.cache_size_kb,
            bandwidth_distribution=self.config.bandwidth_distribution,
            variability=self.config.variability,
            rng=rng,
        )
        floor = self.config.min_path_bandwidth
        if floor > 0:
            for path in topology.paths:
                if path.base_bandwidth < floor:
                    path.base_bandwidth = floor
        if self.config.client_clouds is not None:
            cloud_rng = np.random.default_rng(self._client_cloud_seed(0))
            topology.clients = self.config.client_clouds.build_cloud(cloud_rng)
        return topology

    def _client_cloud_seed(self, purpose: int) -> tuple:
        """Seed of one client-cloud random stream.

        ``purpose`` separates the cloud's two uses of randomness —
        construction (group base-bandwidth draws, 0) and per-request
        last-mile variability (1) — so the request-time ratio stream never
        replays the values that provisioned the groups.
        """
        cloud_seed = (
            self.config.client_clouds.seed
            if self.config.client_clouds is not None
            else 0
        )
        return (
            _CLIENT_CLOUD_STREAM_TAG,
            purpose,
            self.config.seed & 0xFFFFFFFF,
            cloud_seed & 0xFFFFFFFF,
        )

    def schedule_auxiliary_events(
        self,
        engine: SimulationEngine,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
    ) -> None:
        """Extension hook: schedule non-request events before replay starts.

        Subclasses override this to add periodic bandwidth re-measurement,
        prefetch completions, consistency timers, etc.  Scheduling anything
        here makes :meth:`run` take the event-calendar path so the auxiliary
        events interleave correctly with the request stream; the default
        (no auxiliary events) lets the replay use the fast path.
        """

    def build_auxiliary_schedule(
        self,
        topology: DeliveryTopology,
        estimator: Optional[PassiveEstimator],
        measurement_log: Optional[BandwidthMeasurementLog],
        rekeyer: Optional[ReactiveRekeyer] = None,
    ) -> AuxiliarySchedule:
        """Expand the config's typed periodic events into a schedule.

        Currently this covers periodic bandwidth re-measurement
        (:attr:`~repro.sim.config.SimulationConfig.remeasurement`), with
        ``rekeyer`` attached to every stream when the run is reactive
        (:attr:`~repro.sim.config.SimulationConfig.reactive_threshold`);
        subclasses adding further *typed* event families extend this and
        keep access to the columnar event path, whereas arbitrary engine
        events go through :meth:`schedule_auxiliary_events` and force the
        classic event-calendar path.
        """
        if self.config.remeasurement is None:
            return AuxiliarySchedule()
        trace = self.workload.trace
        return AuxiliarySchedule(
            build_remeasurement_events(
                self.config.remeasurement,
                topology,
                estimator,
                measurement_log,
                trace_start=trace.start_time,
                trace_end=trace.end_time,
                base_seed=self.config.seed,
                listener=rekeyer,
            )
        )

    def _last_mile_sequences(
        self, topology: DeliveryTopology, trace
    ) -> Optional[tuple]:
        """Per-request last-mile ``(base, observed, group)`` sequences.

        Returns ``None`` when the topology's client cloud has no modeled
        last-mile paths — the replay loops then skip the composition
        entirely, reproducing the pre-heterogeneity arithmetic exactly.

        Otherwise every request is resolved to its client's group path
        (``client_id % groups``) and three aligned lists are returned: the
        group's *base* bandwidth (what the cache believes its own last mile
        sustains — the cache knows its client side, so no estimator is
        involved), the *observed* last-mile bandwidth for that request
        (base modulated by the group's variability model), and the
        request's client-group index (consumed by the reactive rekeyer's
        per-group anchors; see :mod:`repro.sim.events`).  All draws come
        from the cloud's dedicated generator, in request order, computed
        once per run *before* replay starts — which is what makes the
        composition bit-identical across all four replay paths by
        construction.
        """
        cloud = topology.clients
        paths = getattr(cloud, "paths", None)
        if not paths:
            return None
        total = len(trace)
        if isinstance(trace, ColumnarTrace):
            client_ids = trace.client_ids_array.astype(np.int64, copy=False)
        else:
            client_ids = np.fromiter(
                (request.client_id for request in trace), dtype=np.int64, count=total
            )
        groups = client_ids % len(paths)
        base_lut = np.array([path.base_bandwidth for path in paths], dtype=np.float64)
        base = base_lut[groups]

        rng = np.random.default_rng(self._client_cloud_seed(1))
        model = paths[0].variability
        shared = all(path.variability is model for path in paths)
        if shared and getattr(model, "iid_batch_equivalent", False) and total:
            ratios = np.asarray(model.sample_ratio(rng, size=total), dtype=np.float64)
            observed = base * ratios
            np.maximum(observed, 1.0, out=observed)
        else:
            observed = np.empty(total, dtype=np.float64)
            group_list = groups.tolist()
            for index in range(total):
                observed[index] = paths[group_list[index]].observed_bandwidth(rng)
        return base.tolist(), observed.tolist(), groups.tolist()

    def _pop_sequence(self, trace) -> Optional[List[int]]:
        """Per-request pop indices (``client_id % num_pops``), resolved once.

        Mirrors the affinity rule of :meth:`_last_mile_sequences` (clients
        are pinned by id modulo the replica count).  Returns ``None`` for a
        single-pop hierarchy so the replay loops skip the lookup entirely.
        """
        num_pops = self.config.hierarchy.num_pops
        if num_pops <= 1:
            return None
        if isinstance(trace, ColumnarTrace):
            return (
                trace.client_ids_array.astype(np.int64, copy=False) % num_pops
            ).tolist()
        return [request.client_id % num_pops for request in trace]

    def run(
        self,
        policy,
        topology: Optional[DeliveryTopology] = None,
        use_fast_path: Optional[bool] = None,
        replay: Optional[str] = None,
    ) -> SimulationResult:
        """Run the simulation for one policy.

        Parameters
        ----------
        policy:
            Any object with the :class:`~repro.core.policies.base.CachePolicy`
            interface (``name``, ``on_request``) — including
            :class:`~repro.core.policies.optimal.StaticAllocationPolicy`.
        topology:
            Optionally reuse a pre-built topology so several policies can be
            compared on *identical* bandwidth assignments; when omitted a new
            topology is drawn from the config's seed.
        use_fast_path:
            Legacy boolean view of ``replay``: ``True`` maps to
            ``replay="fast"``, ``False`` to ``replay="event"``.  Ignored
            when ``replay`` is given.
        replay:
            Which replay loop to use — one of :data:`REPLAY_PATHS`.
            ``None``/``"auto"`` (default) picks automatically: the fast
            path when no auxiliary events exist, the columnar event path
            when only *typed* periodic events are scheduled over a dense-id
            columnar trace, the classic event-calendar path otherwise.
            Forcing ``"fast"`` raises
            :class:`~repro.exceptions.SimulationError` if auxiliary events
            would be dropped; forcing ``"columnar-event"`` raises unless
            the workload trace is dense columnar and no untyped engine
            events are scheduled.  All paths produce bit-identical metrics.
        """
        obs = self.config.observability
        profiler: Optional[StageProfiler] = None
        sink: Optional[TraceSink] = None
        if obs is not None and obs.profile:
            profiler = StageProfiler()
        if obs is not None and obs.trace_path is not None:
            sink = TraceSink(
                obs.trace_path, level=obs.trace_level, sample=obs.trace_sample
            )

        rng = np.random.default_rng(self.config.seed)
        if topology is None:
            if profiler is not None:
                with profiler.stage("topology_build"):
                    topology = self.build_topology(rng)
            else:
                topology = self.build_topology(rng)

        if sink is not None:
            store: CacheStore = ObservedCacheStore(self.config.cache_size_kb, sink)
        else:
            store = CacheStore(self.config.cache_size_kb)
        hierarchy: Optional[HierarchyEngine] = None
        if self.config.hierarchy is not None:
            # The run policy's registry name seeds the per-tier policy
            # instances; the instance itself is never installed — each
            # tier owns a fresh policy on its own store.
            hierarchy = HierarchyEngine(
                self.config.hierarchy,
                self.workload.catalog,
                default_policy=getattr(policy, "name", type(policy).__name__),
            )
        elif hasattr(policy, "install"):
            policy.install(store, self.workload.catalog)

        streaming: Optional[StreamingDeliveryEngine] = None
        if self.config.streaming is not None:
            streaming = StreamingDeliveryEngine(
                self.config.streaming,
                self.workload.catalog,
                store,
                sim_seed=self.config.seed,
            )
            # Heap-engine policies get the segment-aware admission /
            # trimming hooks for the run; policies without the hooks
            # (e.g. static allocations) still serve sessions, they just
            # keep their own byte targets.
            if hasattr(policy, "stream_quantize"):
                policy.stream_quantize = streaming.admission_target
                if self.config.streaming.prefix_caching:
                    policy.stream_trim = streaming.trim_victim

        collector = MetricsCollector()
        estimator: Optional[PassiveEstimator] = None
        if self.config.bandwidth_knowledge is BandwidthKnowledge.PASSIVE:
            estimator = PassiveEstimator(smoothing=self.config.passive_smoothing)

        measurement_log: Optional[BandwidthMeasurementLog] = None
        if self.config.remeasurement is not None:
            measurement_log = BandwidthMeasurementLog()
        rekeyer: Optional[ReactiveRekeyer] = None
        if (
            self.config.reactive_threshold is not None
            and estimator is not None
            and hasattr(policy, "on_bandwidth_shift")
        ):
            # With a modeled client cloud, a request from group g never
            # believes more than that group's last-mile base; the rekeyer
            # keeps one anchor per (server, group) view so shift detection
            # and heap keys stay consistent with the per-request
            # composition.  An all-inf cloud degrades to the uncapped view.
            group_caps = topology.last_mile_caps()
            if group_caps is not None and all(
                cap == float("inf") for cap in group_caps
            ):
                group_caps = None
            rekeyer = ReactiveRekeyer(
                policy,
                estimator,
                self.config.reactive_threshold,
                group_caps=group_caps,
                hysteresis=self.config.reactive_hysteresis,
                rekey_cap=self.config.reactive_rekey_cap,
                group_estimation=(
                    self.config.client_clouds is not None
                    and self.config.client_clouds.estimate_last_mile
                ),
            )
        schedule = self.build_auxiliary_schedule(
            topology, estimator, measurement_log, rekeyer
        )

        trace = self.workload.trace
        total_requests = len(trace)
        warmup_cutoff = int(self.config.warmup_fraction * total_requests)
        if warmup_cutoff == 0:
            collector.measuring = True

        injector: Optional[FaultInjector] = None
        if self.config.faults is not None:
            fault_schedule = self.config.faults.build_schedule(
                topology,
                trace_start=trace.start_time,
                trace_end=trace.end_time,
                base_seed=self.config.seed,
            )
            injector = FaultInjector(
                fault_schedule, self.config.faults, estimator=estimator
            )

        timeline: Optional[MetricsTimeline] = None
        if obs is not None and obs.timeline:
            timeline = MetricsTimeline(
                obs.window_s, trace.start_time if total_requests else 0.0
            )
            timeline.bind(
                store=store if hierarchy is None else hierarchy.primary_edge_store,
                rekeyer=rekeyer,
                injector=injector,
                streaming=streaming,
            )
        if sink is not None:
            if rekeyer is not None:
                rekeyer.trace = sink
            if injector is not None:
                injector.trace = sink

        engine = SimulationEngine()
        self.schedule_auxiliary_events(engine, topology, store, collector)
        have_hook_events = len(engine.queue) > 0
        have_typed_events = bool(schedule)
        dense_bound = (
            _dense_id_bound(trace) if isinstance(trace, ColumnarTrace) else None
        )

        mode = self._resolve_replay_path(
            replay, use_fast_path, have_hook_events, have_typed_events, dense_bound
        )

        last_mile = self._last_mile_sequences(topology, trace)
        pops = self._pop_sequence(trace) if hierarchy is not None else None
        # Passive-driven re-keying: the replay loops notify the rekeyer
        # after every request's estimator update (docs/events.md).
        passive_rekeyer = rekeyer if self.config.reactive_passive else None

        if profiler is not None:
            # Instance-attribute wrappers shadow the bound methods the
            # replay loops localise; detach_all() removes them again so
            # profiling leaves no trace on the shared objects.
            profiler.attach(policy, "on_request", "policy_ops")
            if estimator is not None:
                profiler.attach(estimator, "estimate", "estimator")
                profiler.attach(estimator, "observe", "estimator")
            if injector is not None:
                profiler.attach(injector, "intercept", "fault_evaluation")

        if sink is not None:
            sink.emit(
                "info",
                "run-start",
                trace.start_time if total_requests else 0.0,
                policy=getattr(policy, "name", type(policy).__name__),
                replay=mode,
                seed=self.config.seed,
                requests=total_requests,
            )

        replay_started = _time.perf_counter() if profiler is not None else 0.0
        try:
            if mode == "fast":
                self._replay_fast(
                    policy,
                    topology,
                    store,
                    collector,
                    estimator,
                    rng,
                    warmup_cutoff,
                    last_mile,
                    passive_rekeyer,
                    injector,
                    timeline,
                    streaming,
                    hierarchy,
                    pops,
                )
            elif mode == "columnar-event":
                self._replay_events_columnar(
                    schedule,
                    policy,
                    topology,
                    store,
                    collector,
                    estimator,
                    rng,
                    warmup_cutoff,
                    dense_bound,
                    last_mile,
                    passive_rekeyer,
                    injector,
                    timeline,
                    streaming,
                    hierarchy,
                    pops,
                )
            else:
                schedule.schedule_into(engine)
                self._replay_events(
                    engine,
                    policy,
                    topology,
                    store,
                    collector,
                    estimator,
                    rng,
                    warmup_cutoff,
                    last_mile,
                    passive_rekeyer,
                    injector,
                    timeline,
                    streaming,
                    hierarchy,
                    pops,
                )

            if timeline is not None:
                timeline.finish(
                    trace.end_time if total_requests else 0.0,
                    collector.snapshot(),
                )

            metrics = collector.finalize()
            if sink is not None:
                sink.emit(
                    "info",
                    "run-end",
                    trace.end_time if total_requests else 0.0,
                    requests=metrics.requests,
                    hit_ratio=metrics.hit_ratio,
                    byte_hit_ratio=metrics.byte_hit_ratio,
                    evictions=store.evictions,
                )
        finally:
            if streaming is not None and hasattr(policy, "stream_quantize"):
                policy.stream_quantize = None
                policy.stream_trim = None
            if profiler is not None:
                profiler.add("replay", _time.perf_counter() - replay_started)
                profiler.detach_all()
            if sink is not None:
                sink.close()
            if rekeyer is not None:
                rekeyer.trace = None
            if injector is not None:
                injector.trace = None

        return SimulationResult(
            metrics=metrics,
            policy_name=getattr(policy, "name", type(policy).__name__),
            config=self.config,
            final_cache_occupancy=(
                store.occupancy if hierarchy is None else hierarchy.final_occupancy()
            ),
            final_cached_objects=(
                len(store) if hierarchy is None else hierarchy.total_cached_objects()
            ),
            warmup_requests=collector.warmup_requests,
            used_fast_path=mode == "fast",
            replay_path=mode,
            auxiliary_events_fired=schedule.fired,
            measurement_log=measurement_log,
            reactive_shifts=rekeyer.shifts if rekeyer is not None else 0,
            reactive_rekeys=rekeyer.entries_rekeyed if rekeyer is not None else 0,
            reactive_suppressed=rekeyer.suppressed if rekeyer is not None else 0,
            reactive_rekeys_by_server=(
                dict(rekeyer.rekeys_by_server) if rekeyer is not None else {}
            ),
            fault_report=injector.report() if injector is not None else None,
            streaming_report=streaming.report() if streaming is not None else None,
            hierarchy_report=hierarchy.report() if hierarchy is not None else None,
            timeline=timeline,
            profile=profiler.report() if profiler is not None else None,
            heap_statistics=(
                policy.heap_statistics()
                if hierarchy is None and hasattr(policy, "heap_statistics")
                else None
            ),
        )

    @staticmethod
    def _resolve_replay_path(
        replay: Optional[str],
        use_fast_path: Optional[bool],
        have_hook_events: bool,
        have_typed_events: bool,
        dense_bound: Optional[int],
    ) -> str:
        """Pick the replay loop from the request and the scheduled events."""
        if replay is None:
            replay = {None: "auto", True: "fast", False: "event"}[use_fast_path]
        if replay not in REPLAY_PATHS:
            raise SimulationError(
                f"unknown replay path {replay!r}; expected one of {REPLAY_PATHS}"
            )
        if replay == "auto":
            if have_hook_events:
                return "event"
            if have_typed_events:
                return "columnar-event" if dense_bound is not None else "event"
            return "fast"
        if replay == "fast" and (have_hook_events or have_typed_events):
            raise SimulationError(
                "replay='fast' but auxiliary events are scheduled; "
                "the fast path would not dispatch them"
            )
        if replay == "columnar-event":
            if have_hook_events:
                raise SimulationError(
                    "replay='columnar-event' cannot dispatch untyped events "
                    "from schedule_auxiliary_events; use replay='event'"
                )
            if dense_bound is None:
                raise SimulationError(
                    "replay='columnar-event' requires a dense-id ColumnarTrace "
                    "workload; use replay='event' for this trace"
                )
        return replay

    # ------------------------------------------------------------------
    # The event-calendar replay path.
    # ------------------------------------------------------------------
    def _replay_events(
        self,
        engine: SimulationEngine,
        policy,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
        estimator: Optional[PassiveEstimator],
        rng: np.random.Generator,
        warmup_cutoff: int,
        last_mile: Optional[tuple] = None,
        rekeyer: Optional[ReactiveRekeyer] = None,
        injector: Optional[FaultInjector] = None,
        timeline: Optional[MetricsTimeline] = None,
        streaming: Optional[StreamingDeliveryEngine] = None,
        hierarchy: Optional[HierarchyEngine] = None,
        pops: Optional[List[int]] = None,
    ) -> None:
        """Dispatch every request through the discrete-event engine.

        ``last_mile`` (from :meth:`_last_mile_sequences`) composes the
        cache-to-client hop into each request: the delivered bandwidth is
        the bottleneck of the origin draw and the client's last-mile draw,
        and the bandwidth the policy believes is capped by the client
        group's last-mile base.  The passive estimator keeps observing the
        *origin* draw — it estimates the cache-to-server hop, which the
        cache cannot conflate with its own (known) client side.  ``rekeyer``
        (set when the run is passive-driven reactive) is notified after the
        estimator update, in the same position on every replay path.

        ``injector`` (set when the config has
        :attr:`~repro.sim.config.SimulationConfig.faults`) intercepts every
        fetch *after* the bandwidth draws and belief lookup, at the same
        sequence point as the tight loops: an untouched request runs the
        exact pre-fault code below, a degraded/retried one folds its
        backoff wait into the service delay, and a failed fetch serves the
        cached prefix stale (or fails) without consulting the policy — an
        unreachable origin has nothing to admit.

        ``streaming`` (set when the config has
        :attr:`~repro.sim.config.SimulationConfig.streaming`) serves
        stream-object requests as segment-aware delivery sessions through
        the shared :class:`~repro.sim.streaming.StreamingDeliveryEngine`
        at this same sequence point — the policy / estimator / rekeyer
        calls that follow are untouched, which is what keeps the QoE
        metrics bit-identical across all four replay paths.

        ``hierarchy`` (set when the config has
        :attr:`~repro.sim.config.SimulationConfig.hierarchy`) routes every
        successful fetch through the shared
        :class:`~repro.sim.hierarchy.HierarchyEngine` at the same sequence
        point on every path: the engine resolves the client's pop
        (``pops``, or pop 0 throughout), reads the edge residency, walks
        the miss up the tier chain (or to a sibling pop), runs each
        consulted tier's own policy, and hands back the ``(cached,
        bandwidth)`` pair the delivery arithmetic below consumes — so the
        single-proxy ``policy.on_request`` is skipped.  Failed fetches
        serve stale from the client's edge cache.
        """
        catalog = self.workload.catalog
        stream_ids = streaming.stream_ids if streaming is not None else None
        lm_base, lm_observed, lm_groups = (
            last_mile if last_mile is not None else (None, None, None)
        )
        # Timeline boundary: the engine fires same-time auxiliary events
        # (negative priority) before the request handler, so a snapshot at
        # the top of handle_request sits at exactly the sequence point the
        # columnar loops snapshot at (after fire_before, before warm-up
        # flip) — that is what makes the markers path-identical.
        tl_boundary = timeline.first_boundary if timeline is not None else float("inf")

        def handle_request(engine: SimulationEngine, payload) -> None:
            nonlocal tl_boundary
            index, request = payload
            if request.time >= tl_boundary:
                tl_boundary = timeline.close(request.time, collector.snapshot())
            if index == warmup_cutoff:
                collector.measuring = True
            obj = catalog.get(request.object_id)
            path = topology.path_for(obj)
            observed_bandwidth = path.observed_bandwidth(rng)
            origin_observed = observed_bandwidth
            lm_draw = None
            if lm_observed is not None:
                lm_draw = lm_observed[index]
                if lm_draw < observed_bandwidth:
                    observed_bandwidth = lm_draw
            if estimator is not None:
                believed_bandwidth = estimator.estimate(obj.server_id)
            else:
                believed_bandwidth = path.base_bandwidth
            prior_estimate = believed_bandwidth
            if lm_base is not None:
                cap = lm_base[index]
                if cap < believed_bandwidth:
                    believed_bandwidth = cap
            group = lm_groups[index] if lm_groups is not None else None

            disposition = None
            if injector is not None:
                disposition = injector.intercept(
                    engine.now, obj.server_id, group, origin_observed, lm_draw
                )

            if disposition is None or disposition[0] == FETCH_OK:
                if disposition is not None:
                    observed_bandwidth = disposition[1]
                    origin_observed = disposition[2]
                if stream_ids is not None and request.object_id in stream_ids:
                    s_cache, s_server, s_delay, s_quality, s_full = streaming.serve(
                        obj.object_id,
                        observed_bandwidth,
                        engine.now,
                        collector.measuring,
                        disposition[3] if disposition is not None else 0.0,
                    )
                    collector.record_streaming(
                        obj.object_id,
                        s_cache,
                        s_server,
                        s_delay,
                        s_quality,
                        obj.value,
                        s_full,
                        disposition[4] if disposition is not None else 0,
                    )
                else:
                    if hierarchy is not None:
                        cached_before, observed_bandwidth = hierarchy.serve(
                            pops[index] if pops is not None else 0,
                            obj.object_id,
                            obj,
                            obj.size,
                            observed_bandwidth,
                            lm_draw,
                            believed_bandwidth,
                            prior_estimate,
                            engine.now,
                            collector.measuring,
                        )
                    else:
                        cached_before = store.cached_bytes(obj.object_id)
                    outcome = DeliverySession(
                        obj, cached_before, observed_bandwidth
                    ).outcome()
                    if disposition is None:
                        collector.record(outcome)
                    else:
                        delay = outcome.service_delay
                        waited = disposition[3]
                        if waited > 0.0:
                            delay = delay + waited
                        collector.record_served_fault(
                            obj.object_id,
                            outcome.bytes_from_cache,
                            outcome.bytes_from_server,
                            delay,
                            outcome.stream_quality,
                            outcome.value,
                            disposition[4],
                        )
                if hierarchy is None:
                    policy.on_request(obj, believed_bandwidth, engine.now, store)
                if estimator is not None:
                    estimator.observe(obj.server_id, origin_observed)
                    if rekeyer is not None:
                        rekeyer.observe_request(
                            engine.now,
                            obj.server_id,
                            group,
                            prior_estimate,
                            observed_bandwidth,
                        )
            else:
                # Fetch failed after the retry budget: serve the cached
                # prefix stale, or fail the request outright.
                if hierarchy is not None:
                    cached = hierarchy.edge_cached(
                        pops[index] if pops is not None else 0, obj.object_id
                    )
                else:
                    cached = store.cached_bytes(obj.object_id)
                size = obj.size
                if cached > size:
                    cached = size
                stale = injector.serve_stale and cached > 0.0
                injector.record_unserved(stale)
                waited = disposition[3]
                quality = (
                    stale_quality(cached, obj.duration, obj.bitrate, 1.0 / obj.layers)
                    if stale
                    else 0.0
                )
                collector.record_unserved(
                    obj.object_id,
                    cached,
                    waited,
                    quality,
                    disposition[4],
                    stale,
                )
                if (
                    stream_ids is not None
                    and request.object_id in stream_ids
                    and collector.measuring
                ):
                    streaming.record_failed(waited, quality)
                # No policy.on_request: the origin is unreachable, so
                # there is nothing to fetch or admit.  The estimator still
                # observes the collapsed sample — that is how the reactive
                # machinery sees the outage.
                if estimator is not None:
                    estimator.observe(obj.server_id, disposition[2])
                    if rekeyer is not None:
                        rekeyer.observe_request(
                            engine.now,
                            obj.server_id,
                            group,
                            prior_estimate,
                            disposition[1],
                        )
            if self.config.verify_store and not (
                store.verify_consistency()
                if hierarchy is None
                else hierarchy.verify_consistency()
            ):
                raise AssertionError(
                    "cache store accounting became inconsistent "
                    f"after request {index} (object {obj.object_id})"
                )

        for index, request in enumerate(self.workload.trace):
            engine.schedule(request.time, handle_request, (index, request))
        engine.run()

    # ------------------------------------------------------------------
    # The fast replay path.
    # ------------------------------------------------------------------
    def _predraw_ratios(
        self, topology: DeliveryTopology, rng: np.random.Generator, count: int
    ) -> Optional[np.ndarray]:
        """Draw all per-request variability ratios in one numpy batch.

        Only legal when every path shares one variability model whose batched
        draws consume the generator exactly like per-request draws
        (``iid_batch_equivalent``); returns ``None`` otherwise, in which case
        the fast path falls back to per-request sampling.
        """
        model = None
        for path in topology.paths:
            if model is None:
                model = path.variability
            elif path.variability is not model:
                return None
        if model is None or not getattr(model, "iid_batch_equivalent", False):
            return None
        if count == 0:
            return np.empty(0)
        return np.asarray(model.sample_ratio(rng, size=count), dtype=np.float64)

    def _replay_fast(
        self,
        policy,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
        estimator: Optional[PassiveEstimator],
        rng: np.random.Generator,
        warmup_cutoff: int,
        last_mile: Optional[tuple] = None,
        rekeyer: Optional[ReactiveRekeyer] = None,
        injector: Optional[FaultInjector] = None,
        timeline: Optional[MetricsTimeline] = None,
        streaming: Optional[StreamingDeliveryEngine] = None,
        hierarchy: Optional[HierarchyEngine] = None,
        pops: Optional[List[int]] = None,
    ) -> None:
        """Iterate the trace in a tight loop, bypassing the event calendar.

        Replicates the per-request arithmetic of
        :class:`~repro.streaming.session.DeliverySession` and
        :meth:`~repro.sim.metrics.MetricsCollector.record` operation-for-
        operation (same floating-point order), so the resulting metrics are
        bit-identical to the event path's.  Warm-up requests skip the
        delivery-outcome arithmetic entirely — their outcomes are never
        recorded — and all metric sums accumulate in locals, merged into the
        collector once at the end.  ``last_mile`` composes the per-client
        hop exactly as in :meth:`_replay_events`.
        """
        catalog = self.workload.catalog
        trace = self.workload.trace

        # Dense columnar traces take the dedicated array-native loop.
        is_columnar = isinstance(trace, ColumnarTrace)
        if is_columnar:
            max_id = _dense_id_bound(trace)
            if max_id is not None:
                return self._replay_fast_columnar(
                    policy,
                    topology,
                    store,
                    collector,
                    estimator,
                    rng,
                    warmup_cutoff,
                    max_id,
                    last_mile,
                    rekeyer,
                    injector,
                    timeline,
                    streaming,
                    hierarchy,
                    pops,
                )

        ratio_array = self._predraw_ratios(topology, rng, len(trace))

        # Localise everything touched per request.
        catalog_get = catalog.get
        path_for = topology.path_for
        store_cached = store.cached_bytes
        policy_on_request = policy.on_request
        estimator_estimate = estimator.estimate if estimator is not None else None
        estimator_observe = estimator.observe if estimator is not None else None
        verify_store = self.config.verify_store
        verify_consistency = (
            store.verify_consistency if hierarchy is None else hierarchy.verify_consistency
        )
        hier_serve = hierarchy.serve if hierarchy is not None else None
        hier_edge = hierarchy.edge_cached if hierarchy is not None else None
        inf = float("inf")

        # Per-object resolution cache: (obj, base_bw, size, duration,
        # bitrate, quantum, value, server_id).  ``base_bw`` is immutable for
        # the duration of a run (the floor from build_topology is applied
        # before replay starts), so caching it is safe.
        resolved: Dict[int, tuple] = {}
        ratios = ratio_array.tolist() if ratio_array is not None else None
        lm_base, lm_observed, lm_groups = (
            last_mile if last_mile is not None else (None, None, None)
        )
        rekeyer_request = rekeyer.observe_request if rekeyer is not None else None
        intercept = injector.intercept if injector is not None else None
        serve_stale = injector.serve_stale if injector is not None else False
        stream_serve = streaming.serve if streaming is not None else None
        stream_failed = streaming.record_failed if streaming is not None else None
        stream_ids = streaming.stream_ids if streaming is not None else None

        measuring = collector.measuring
        m_requests = 0
        m_bytes_cache = 0.0
        m_bytes_server = 0.0
        m_delay = 0.0
        m_quality = 0.0
        m_value = 0.0
        m_hits = 0
        m_immediate = 0
        m_delayed = 0
        m_delay_delayed = 0.0
        m_failed = 0
        m_stale = 0
        m_retried = 0
        m_retries = 0
        warmup_count = 0
        hits_by_object: Dict[int, int] = {}

        # Timeline boundary check: one float compare per request; with no
        # timeline the boundary is +inf and the branch never runs.  The
        # snapshot tuple is built inline — a helper closing over the m_*
        # locals would turn them into cell variables and slow the whole
        # loop even when the timeline is disabled.
        tl_close = timeline.close if timeline is not None else None
        tl_boundary = timeline.first_boundary if timeline is not None else inf

        # Pre-extract the two request fields the loop needs.  A non-dense
        # columnar trace hands its arrays over directly (one batch
        # ``tolist`` per column, native scalars, no Request boxing); an
        # object trace pays one attribute-access pass, which on 10^5-10^6
        # Request objects adds up.
        if is_columnar:
            # Lazy zip on purpose: consuming it in the loop is cheaper than
            # materializing 10^5-10^6 fresh tuples up front.
            request_fields = zip(
                trace.object_ids_array.tolist(), trace.times_array.tolist()
            )
        else:
            request_fields = [(request.object_id, request.time) for request in trace]

        for index, (object_id, req_time) in enumerate(request_fields):
            if req_time >= tl_boundary:
                tl_boundary = tl_close(
                    req_time,
                    (
                        m_requests,
                        m_bytes_cache,
                        m_bytes_server,
                        m_delay,
                        m_quality,
                        m_value,
                        m_hits,
                        m_immediate,
                        m_delayed,
                        m_delay_delayed,
                        m_failed,
                        m_stale,
                        m_retried,
                        m_retries,
                    ),
                )
            if index == warmup_cutoff:
                measuring = True
            entry = resolved.get(object_id)
            if entry is None:
                obj = catalog_get(object_id)
                path = path_for(obj)
                entry = (
                    obj,
                    path.base_bandwidth,
                    obj.duration * obj.bitrate,
                    obj.duration,
                    obj.bitrate,
                    1.0 / obj.layers,
                    obj.value,
                    obj.server_id,
                    path,
                )
                resolved[object_id] = entry
            obj, base_bw, size, duration, bitrate, quantum, value, server_id, path = entry

            if ratios is not None:
                observed = base_bw * ratios[index]
                if observed < 1.0:
                    observed = 1.0
            else:
                observed = path.observed_bandwidth(rng)
            origin_observed = observed
            if lm_observed is not None:
                cap = lm_observed[index]
                if cap < observed:
                    observed = cap

            if estimator_estimate is not None:
                believed = estimator_estimate(server_id)
            else:
                believed = base_bw
            prior_estimate = believed
            if lm_base is not None:
                cap = lm_base[index]
                if cap < believed:
                    believed = cap

            disposition = None
            if intercept is not None:
                disposition = intercept(
                    req_time,
                    server_id,
                    lm_groups[index] if lm_groups is not None else None,
                    origin_observed,
                    lm_observed[index] if lm_observed is not None else None,
                )

            if hier_serve is None:
                cached = store_cached(object_id)

            if disposition is None or disposition[0] == 0:  # FETCH_OK
                if disposition is not None:
                    observed = disposition[1]
                    origin_observed = disposition[2]
                if hier_serve is not None:
                    cached, observed = hier_serve(
                        pops[index] if pops is not None else 0,
                        object_id,
                        obj,
                        size,
                        observed,
                        lm_observed[index] if lm_observed is not None else None,
                        believed,
                        prior_estimate,
                        req_time,
                        measuring,
                    )
                if stream_serve is not None and object_id in stream_ids:
                    # Segment-aware session through the shared streaming
                    # engine; the accumulation below mirrors
                    # MetricsCollector.record_streaming() operation-for-
                    # operation.
                    s_cache, s_server, s_delay, s_quality, s_full = stream_serve(
                        object_id,
                        observed,
                        req_time,
                        measuring,
                        disposition[3] if disposition is not None else 0.0,
                    )
                    if measuring:
                        m_requests += 1
                        m_bytes_cache += s_cache
                        m_bytes_server += s_server
                        m_delay += s_delay
                        m_quality += s_quality
                        if s_delay <= 0.0:
                            if s_full:
                                m_value += value
                            m_immediate += 1
                        else:
                            m_delayed += 1
                            m_delay_delayed += s_delay
                        if s_cache > 0:
                            m_hits += 1
                            hits_by_object[object_id] = (
                                hits_by_object.get(object_id, 0) + 1
                            )
                        if disposition is not None and disposition[4]:
                            m_retried += 1
                            m_retries += disposition[4]
                    else:
                        warmup_count += 1
                elif measuring:
                    # DeliverySession.outcome(), inlined with identical
                    # floating-point operation order.
                    if cached > size:
                        cached = size
                    missing = size - duration * observed - cached
                    if missing <= 0:
                        delay = 0.0
                    elif observed <= 0:
                        delay = inf
                    else:
                        delay = missing / observed
                    supported_rate = cached / duration + (
                        observed if observed > 0.0 else 0.0
                    )
                    fraction = supported_rate / bitrate
                    if fraction >= 1.0:
                        quality = 1.0
                    else:
                        quality = int(fraction / quantum + 1e-9) * quantum
                    if disposition is not None and disposition[3] > 0.0:
                        # Retry backoff delays playout start.
                        delay = delay + disposition[3]

                    # MetricsCollector.record(), inlined in the same order.
                    m_requests += 1
                    m_bytes_cache += cached
                    m_bytes_server += size - cached
                    m_delay += delay
                    m_quality += quality
                    if delay <= 0.0:
                        m_value += value
                        m_immediate += 1
                    else:
                        m_delayed += 1
                        m_delay_delayed += delay
                    if cached > 0:
                        m_hits += 1
                        hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
                    if disposition is not None and disposition[4]:
                        m_retried += 1
                        m_retries += disposition[4]
                else:
                    warmup_count += 1

                if hier_serve is None:
                    policy_on_request(obj, believed, req_time, store)
                if estimator_observe is not None:
                    estimator_observe(server_id, origin_observed)
                    if rekeyer_request is not None:
                        rekeyer_request(
                            req_time,
                            server_id,
                            lm_groups[index] if lm_groups is not None else None,
                            prior_estimate,
                            observed,
                        )
            else:
                # Fetch failed after the retry budget: serve the cached
                # prefix stale, or fail the request outright.  No
                # policy_on_request — the origin is unreachable, so there
                # is nothing to fetch or admit.
                if hier_edge is not None:
                    cached = hier_edge(
                        pops[index] if pops is not None else 0, object_id
                    )
                if cached > size:
                    cached = size
                stale = serve_stale and cached > 0.0
                injector.record_unserved(stale)
                if measuring:
                    waited = disposition[3]
                    m_requests += 1
                    if stale:
                        sq = stale_quality(cached, duration, bitrate, quantum)
                        m_bytes_cache += cached
                        m_quality += sq
                        m_hits += 1
                        hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
                        m_stale += 1
                    else:
                        sq = 0.0
                        m_failed += 1
                    m_delay += waited
                    m_delayed += 1
                    m_delay_delayed += waited
                    if disposition[4]:
                        m_retried += 1
                        m_retries += disposition[4]
                    if stream_failed is not None and object_id in stream_ids:
                        stream_failed(waited, sq)
                else:
                    warmup_count += 1
                if estimator_observe is not None:
                    estimator_observe(server_id, disposition[2])
                    if rekeyer_request is not None:
                        rekeyer_request(
                            req_time,
                            server_id,
                            lm_groups[index] if lm_groups is not None else None,
                            prior_estimate,
                            disposition[1],
                        )
            if verify_store and not verify_consistency():
                raise AssertionError(
                    "cache store accounting became inconsistent "
                    f"after request {index} (object {object_id})"
                )

        collector.measuring = measuring
        collector.absorb(
            requests=m_requests,
            bytes_from_cache=m_bytes_cache,
            bytes_from_server=m_bytes_server,
            delay_sum=m_delay,
            quality_sum=m_quality,
            value_sum=m_value,
            hits=m_hits,
            immediate=m_immediate,
            delayed=m_delayed,
            delay_sum_delayed=m_delay_delayed,
            warmup_requests=warmup_count,
            failed=m_failed,
            stale_served=m_stale,
            retried=m_retried,
            total_retries=m_retries,
            per_object_hits=hits_by_object,
        )

    # ------------------------------------------------------------------
    # The columnar fast replay path.
    # ------------------------------------------------------------------
    def _replay_fast_columnar(
        self,
        policy,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
        estimator: Optional[PassiveEstimator],
        rng: np.random.Generator,
        warmup_cutoff: int,
        max_id: int,
        last_mile: Optional[tuple] = None,
        rekeyer: Optional[ReactiveRekeyer] = None,
        injector: Optional[FaultInjector] = None,
        timeline: Optional[MetricsTimeline] = None,
        streaming: Optional[StreamingDeliveryEngine] = None,
        hierarchy: Optional[HierarchyEngine] = None,
        pops: Optional[List[int]] = None,
    ) -> None:
        """Array-native replay for dense-id :class:`ColumnarTrace` workloads.

        This is :meth:`_replay_events_columnar` with an empty auxiliary
        schedule: the event merge degenerates to one list-truthiness check
        per request, so a single loop serves both the columnar fast path
        and the columnar event path — one copy of the bit-identical
        arithmetic to maintain instead of two.
        """
        self._replay_events_columnar(
            AuxiliarySchedule(),
            policy,
            topology,
            store,
            collector,
            estimator,
            rng,
            warmup_cutoff,
            max_id,
            last_mile,
            rekeyer,
            injector,
            timeline,
            streaming,
            hierarchy,
            pops,
        )

    # ------------------------------------------------------------------
    # The columnar event path: array-native replay + auxiliary events.
    # ------------------------------------------------------------------
    def _replay_events_columnar(
        self,
        schedule: AuxiliarySchedule,
        policy,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
        estimator: Optional[PassiveEstimator],
        rng: np.random.Generator,
        warmup_cutoff: int,
        max_id: int,
        last_mile: Optional[tuple] = None,
        rekeyer: Optional[ReactiveRekeyer] = None,
        injector: Optional[FaultInjector] = None,
        timeline: Optional[MetricsTimeline] = None,
        streaming: Optional[StreamingDeliveryEngine] = None,
        hierarchy: Optional[HierarchyEngine] = None,
        pops: Optional[List[int]] = None,
    ) -> None:
        """Event-capable replay over a dense-id columnar trace.

        Iterates the trace's numpy columns directly — no per-event
        ``Request`` or ``Event`` boxing — while merging the typed auxiliary
        events of ``schedule`` into the request stream by ``(time,
        priority)``, exactly as the discrete-event engine orders them
        (auxiliary priorities are non-zero by construction, so the merge is
        never ambiguous).

        The per-request arithmetic is operation-for-operation identical to
        :meth:`_replay_fast` (and therefore to every other path): with no
        auxiliary events scheduled the metrics are **bit-identical** to the
        fast/columnar loops.  Auxiliary events draw from their own random
        generators (see :mod:`repro.sim.events`), so the request stream's
        pre-drawn bandwidth ratios stay valid even while events fire
        between requests.  ``last_mile`` composes the per-client hop
        exactly as in :meth:`_replay_events`.
        """
        catalog = self.workload.catalog
        trace: ColumnarTrace = self.workload.trace
        total = len(trace)
        ratio_array = self._predraw_ratios(topology, rng, total)

        # Localise everything touched per request.
        catalog_get = catalog.get
        path_for = topology.path_for
        store_cached = store.cached_bytes
        policy_on_request = policy.on_request
        estimator_estimate = estimator.estimate if estimator is not None else None
        estimator_observe = estimator.observe if estimator is not None else None
        verify_store = self.config.verify_store
        verify_consistency = (
            store.verify_consistency if hierarchy is None else hierarchy.verify_consistency
        )
        hier_serve = hierarchy.serve if hierarchy is not None else None
        hier_edge = hierarchy.edge_cached if hierarchy is not None else None
        inf = float("inf")

        ids_array = trace.object_ids_array
        ids_list = ids_array.tolist()
        times_list = trace.times_array.tolist()

        # Resolve every distinct object once (dense ids, list-indexed).
        entries: List[Optional[tuple]] = [None] * (max_id + 1)
        for object_id in (np.unique(ids_array).tolist() if total else []):
            obj = catalog_get(object_id)
            path = path_for(obj)
            entries[object_id] = (
                obj,
                path.base_bandwidth,
                obj.duration * obj.bitrate,
                obj.duration,
                obj.bitrate,
                1.0 / obj.layers,
                obj.value,
                obj.server_id,
                path,
            )

        # Vectorised observed bandwidth when the variability model allows
        # batched draws (elementwise IEEE-identical to the scalar form).
        observed_seq: Optional[List[float]] = None
        if ratio_array is not None and total:
            base_lut = np.zeros(max_id + 1, dtype=np.float64)
            for object_id, entry in enumerate(entries):
                if entry is not None:
                    base_lut[object_id] = entry[1]
            observed_array = base_lut[ids_array] * ratio_array
            np.maximum(observed_array, 1.0, out=observed_array)
            observed_seq = observed_array.tolist()

        lm_base, lm_observed, lm_groups = (
            last_mile if last_mile is not None else (None, None, None)
        )
        rekeyer_request = rekeyer.observe_request if rekeyer is not None else None
        intercept = injector.intercept if injector is not None else None
        serve_stale = injector.serve_stale if injector is not None else False
        stream_serve = streaming.serve if streaming is not None else None
        stream_failed = streaming.record_failed if streaming is not None else None
        stream_ids = streaming.stream_ids if streaming is not None else None

        aux_heap = schedule.begin()
        fire_before = schedule.fire_before

        # Timeline boundary check: one float compare per request; with no
        # timeline the boundary is +inf and the branch never runs.  The
        # snapshot tuple is built inline — a helper closing over the m_*
        # locals would turn them into cell variables and slow the whole
        # loop even when the timeline is disabled.
        tl_close = timeline.close if timeline is not None else None
        tl_boundary = timeline.first_boundary if timeline is not None else inf

        measuring = collector.measuring
        m_requests = 0
        m_bytes_cache = 0.0
        m_bytes_server = 0.0
        m_delay = 0.0
        m_quality = 0.0
        m_value = 0.0
        m_hits = 0
        m_immediate = 0
        m_delayed = 0
        m_delay_delayed = 0.0
        m_failed = 0
        m_stale = 0
        m_retried = 0
        m_retries = 0
        warmup_count = 0
        hits_by_object: Dict[int, int] = {}

        for index, object_id in enumerate(ids_list):
            req_time = times_list[index]
            # Fire every auxiliary event the engine would have run before
            # this request (strictly earlier time, or same time with a
            # negative priority).  The guard keeps the empty-schedule case
            # — the columnar fast path — at one truthiness check.
            if aux_heap and (aux_heap[0][0], aux_heap[0][1]) < (req_time, 0):
                fire_before(req_time)
            if req_time >= tl_boundary:
                tl_boundary = tl_close(
                    req_time,
                    (
                        m_requests,
                        m_bytes_cache,
                        m_bytes_server,
                        m_delay,
                        m_quality,
                        m_value,
                        m_hits,
                        m_immediate,
                        m_delayed,
                        m_delay_delayed,
                        m_failed,
                        m_stale,
                        m_retried,
                        m_retries,
                    ),
                )
            if index == warmup_cutoff:
                measuring = True

            entry = entries[object_id]
            obj, base_bw, size, duration, bitrate, quantum, value, server_id, path = entry

            if observed_seq is not None:
                observed = observed_seq[index]
            else:
                observed = path.observed_bandwidth(rng)
            origin_observed = observed
            if lm_observed is not None:
                cap = lm_observed[index]
                if cap < observed:
                    observed = cap

            if estimator_estimate is not None:
                believed = estimator_estimate(server_id)
            else:
                believed = base_bw
            prior_estimate = believed
            if lm_base is not None:
                cap = lm_base[index]
                if cap < believed:
                    believed = cap

            disposition = None
            if intercept is not None:
                disposition = intercept(
                    req_time,
                    server_id,
                    lm_groups[index] if lm_groups is not None else None,
                    origin_observed,
                    lm_observed[index] if lm_observed is not None else None,
                )

            if disposition is None or disposition[0] == 0:  # FETCH_OK
                if disposition is not None:
                    observed = disposition[1]
                    origin_observed = disposition[2]
                if hier_serve is not None:
                    cached, observed = hier_serve(
                        pops[index] if pops is not None else 0,
                        object_id,
                        obj,
                        size,
                        observed,
                        lm_observed[index] if lm_observed is not None else None,
                        believed,
                        prior_estimate,
                        req_time,
                        measuring,
                    )
                if stream_serve is not None and object_id in stream_ids:
                    # Segment-aware session through the shared streaming
                    # engine; the accumulation below mirrors
                    # MetricsCollector.record_streaming() operation-for-
                    # operation.
                    s_cache, s_server, s_delay, s_quality, s_full = stream_serve(
                        object_id,
                        observed,
                        req_time,
                        measuring,
                        disposition[3] if disposition is not None else 0.0,
                    )
                    if measuring:
                        m_requests += 1
                        m_bytes_cache += s_cache
                        m_bytes_server += s_server
                        m_delay += s_delay
                        m_quality += s_quality
                        if s_delay <= 0.0:
                            if s_full:
                                m_value += value
                            m_immediate += 1
                        else:
                            m_delayed += 1
                            m_delay_delayed += s_delay
                        if s_cache > 0:
                            m_hits += 1
                            hits_by_object[object_id] = (
                                hits_by_object.get(object_id, 0) + 1
                            )
                        if disposition is not None and disposition[4]:
                            m_retried += 1
                            m_retries += disposition[4]
                    else:
                        warmup_count += 1
                elif measuring:
                    if hier_serve is None:
                        cached = store_cached(object_id)

                    # DeliverySession.outcome(), inlined with identical
                    # floating-point operation order.
                    if cached > size:
                        cached = size
                    missing = size - duration * observed - cached
                    if missing <= 0:
                        delay = 0.0
                    elif observed <= 0:
                        delay = inf
                    else:
                        delay = missing / observed
                    supported_rate = cached / duration + (
                        observed if observed > 0.0 else 0.0
                    )
                    fraction = supported_rate / bitrate
                    if fraction >= 1.0:
                        quality = 1.0
                    else:
                        quality = int(fraction / quantum + 1e-9) * quantum
                    if disposition is not None and disposition[3] > 0.0:
                        # Retry backoff delays playout start.
                        delay = delay + disposition[3]

                    # MetricsCollector.record(), inlined in the same order.
                    m_requests += 1
                    m_bytes_cache += cached
                    m_bytes_server += size - cached
                    m_delay += delay
                    m_quality += quality
                    if delay <= 0.0:
                        m_value += value
                        m_immediate += 1
                    else:
                        m_delayed += 1
                        m_delay_delayed += delay
                    if cached > 0:
                        m_hits += 1
                        hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
                    if disposition is not None and disposition[4]:
                        m_retried += 1
                        m_retries += disposition[4]
                else:
                    warmup_count += 1

                if hier_serve is None:
                    policy_on_request(obj, believed, req_time, store)
                if estimator_observe is not None:
                    estimator_observe(server_id, origin_observed)
                    if rekeyer_request is not None:
                        rekeyer_request(
                            req_time,
                            server_id,
                            lm_groups[index] if lm_groups is not None else None,
                            prior_estimate,
                            observed,
                        )
            else:
                # Fetch failed after the retry budget: serve the cached
                # prefix stale, or fail the request outright.  No
                # policy_on_request — the origin is unreachable, so there
                # is nothing to fetch or admit.
                if hier_edge is not None:
                    cached = hier_edge(
                        pops[index] if pops is not None else 0, object_id
                    )
                else:
                    cached = store_cached(object_id)
                if cached > size:
                    cached = size
                stale = serve_stale and cached > 0.0
                injector.record_unserved(stale)
                if measuring:
                    waited = disposition[3]
                    m_requests += 1
                    if stale:
                        sq = stale_quality(cached, duration, bitrate, quantum)
                        m_bytes_cache += cached
                        m_quality += sq
                        m_hits += 1
                        hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
                        m_stale += 1
                    else:
                        sq = 0.0
                        m_failed += 1
                    m_delay += waited
                    m_delayed += 1
                    m_delay_delayed += waited
                    if disposition[4]:
                        m_retried += 1
                        m_retries += disposition[4]
                    if stream_failed is not None and object_id in stream_ids:
                        stream_failed(waited, sq)
                else:
                    warmup_count += 1
                if estimator_observe is not None:
                    estimator_observe(server_id, disposition[2])
                    if rekeyer_request is not None:
                        rekeyer_request(
                            req_time,
                            server_id,
                            lm_groups[index] if lm_groups is not None else None,
                            prior_estimate,
                            disposition[1],
                        )
            if verify_store and not verify_consistency():
                raise AssertionError(
                    "cache store accounting became inconsistent "
                    f"after request {index} (object {object_id})"
                )

        # Auxiliary events scheduled after the last request still fire, just
        # as the engine would have drained them.
        schedule.drain()

        collector.measuring = measuring
        collector.absorb(
            requests=m_requests,
            bytes_from_cache=m_bytes_cache,
            bytes_from_server=m_bytes_server,
            delay_sum=m_delay,
            quality_sum=m_quality,
            value_sum=m_value,
            hits=m_hits,
            immediate=m_immediate,
            delayed=m_delayed,
            delay_sum_delayed=m_delay_delayed,
            warmup_requests=warmup_count,
            failed=m_failed,
            stale_served=m_stale,
            retried=m_retried,
            total_retries=m_retries,
            per_object_hits=hits_by_object,
        )
