"""Cache hierarchies in the simulator: tier chains, pops, siblings, and
sharded fleet replay on all four replay paths.

Five families of guarantees are pinned here:

* **Bit-identity, degenerate hierarchy** — a 1-tier chain with an
  infinite uplink and one pop replays exactly like the pre-hierarchy
  single-proxy simulator, per policy (every bandwidth cap is applied as
  ``if cap < value``, a no-op for infinite caps).
* **Bit-identity, hierarchy on** — multi-tier chains, pops, sibling
  lookups, client clouds, faults, and observability all produce identical
  metrics, timelines, and hierarchy reports across the event, fast,
  columnar-fast, and columnar-event loops.
* **Engine semantics** — escalation over cumulative prefixes, the
  bottleneck bandwidth composition per serve shape (edge hit / sibling /
  tier-absorbed / origin), read-only sibling serves, and the per-tier
  byte accounting of :class:`~repro.sim.hierarchy.HierarchyEngine`.
* **Properties** — byte conservation (client bytes = tier + sibling +
  origin bytes), per-tier bounds, and shard-merge determinism under
  permuted partial results (Hypothesis).
* **Sharded fleet replay** — the client-group partition is exact, the
  merged result is identical for every worker count, and a committed
  golden fixture pins the ``experiment hierarchy`` headline numbers
  byte-exactly.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.experiments import experiment_hierarchy
from repro.analysis.parallel import merge_shard_results, run_sharded_fleet
from repro.core.policies import PolicySpec, make_policy
from repro.exceptions import ConfigurationError
from repro.network.distributions import NLANRBandwidthDistribution
from repro.network.variability import NLANRRatioVariability
from repro.obs import ObservabilityConfig
from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.faults import FaultConfig
from repro.sim.hierarchy import (
    CacheTier,
    HierarchyConfig,
    HierarchyEngine,
    HierarchyReport,
    tier_prefix_function,
)
from repro.sim.sharing import StreamSharingAnalyzer
from repro.sim.simulator import ProxyCacheSimulator
from repro.sim.streaming import StreamingConfig
from repro.trace.columnar import ColumnarTrace
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig
from repro.workload.trace import Request, RequestTrace

from conftest import (
    REPLAY_PATH_LABELS,
    assert_replay_paths_identical,
    run_replay_paths,
)


@pytest.fixture(scope="module")
def workload():
    """Columnar workload with enough distinct clients to populate 4 pops."""
    config = WorkloadConfig(seed=7, num_clients=24).scaled(0.02)
    return GismoWorkloadGenerator(config).generate(columnar=True)


def _config(**overrides):
    base = dict(
        cache_size_gb=0.5,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        seed=11,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _tiers(edge_kb=100_000.0, parent_kb=400_000.0, edge_up=50.0, parent_up=40.0):
    return (
        CacheTier(name="edge", cache_kb=edge_kb, uplink_bandwidth=edge_up),
        CacheTier(name="parent", cache_kb=parent_kb, uplink_bandwidth=parent_up),
    )


def _hierarchy(**overrides):
    base = dict(tiers=_tiers(), num_pops=4)
    base.update(overrides)
    return HierarchyConfig(**base)


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestHierarchyConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"cache_kb": -1.0},
            {"uplink_bandwidth": 0.0},
            {"uplink_bandwidth": -5.0},
        ],
    )
    def test_tier_validation(self, kwargs):
        base = dict(name="edge", cache_kb=1000.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            CacheTier(**base)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tiers": ()},
            {"num_pops": 0},
            {"sibling_lookup": True},  # needs num_pops >= 2
            {"num_pops": 2, "sibling_lookup": True, "sibling_bandwidth": 0.0},
        ],
    )
    def test_hierarchy_validation(self, kwargs):
        base = dict(tiers=(CacheTier(name="edge", cache_kb=1000.0),))
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            HierarchyConfig(**base)

    def test_duplicate_tier_names_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                tiers=(
                    CacheTier(name="edge", cache_kb=1.0),
                    CacheTier(name="edge", cache_kb=2.0),
                )
            )

    def test_list_tiers_coerced_to_tuple(self):
        hierarchy = HierarchyConfig(tiers=[CacheTier(name="edge", cache_kb=1.0)])
        assert isinstance(hierarchy.tiers, tuple)

    def test_with_hierarchy_round_trips(self):
        hierarchy = _hierarchy()
        config = _config().with_hierarchy(hierarchy)
        assert config.hierarchy == hierarchy
        assert config.with_hierarchy(None).hierarchy is None

    def test_hierarchy_excludes_streaming_and_reactive(self):
        hierarchy = _hierarchy()
        with pytest.raises(ConfigurationError):
            _config(hierarchy=hierarchy, streaming=StreamingConfig())
        with pytest.raises(ConfigurationError):
            _config(hierarchy=hierarchy, reactive_threshold=0.2)


# ----------------------------------------------------------------------
# Degenerate hierarchy == the pre-hierarchy simulator, per policy
# ----------------------------------------------------------------------
class TestDegenerateTierEquivalence:
    @pytest.mark.parametrize("policy_name", ["PB", "IB", "LRU"])
    def test_one_tier_infinite_uplink_matches_plain_run(
        self, workload, policy_name
    ):
        config = _config()
        degenerate = HierarchyConfig(
            tiers=(CacheTier(name="edge", cache_kb=config.cache_size_kb),)
        )
        plain = run_replay_paths(workload, config, policy_name)
        wrapped = assert_replay_paths_identical(
            workload, config, policy_name, hierarchy=degenerate
        )
        for label in REPLAY_PATH_LABELS:
            assert wrapped[label].metrics == plain[label].metrics, (
                policy_name,
                label,
            )

    def test_degenerate_matches_under_client_clouds(self, workload):
        config = _config(client_clouds=ClientCloudConfig(groups=8, bandwidth=30.0))
        degenerate = HierarchyConfig(
            tiers=(CacheTier(name="edge", cache_kb=config.cache_size_kb),)
        )
        plain = run_replay_paths(workload, config, "PB")
        wrapped = assert_replay_paths_identical(
            workload, config, "PB", hierarchy=degenerate
        )
        for label in REPLAY_PATH_LABELS:
            assert wrapped[label].metrics == plain[label].metrics, label

    def test_degenerate_report_accounts_every_byte(self, workload):
        config = _config()
        degenerate = HierarchyConfig(
            tiers=(CacheTier(name="edge", cache_kb=config.cache_size_kb),)
        )
        result = ProxyCacheSimulator(
            workload, config.with_hierarchy(degenerate)
        ).run(make_policy("PB"))
        report = result.hierarchy_report
        assert report.tier_names == ("edge",)
        assert report.requests == result.metrics.requests
        assert report.client_bytes == pytest.approx(
            report.tier_absorbed_bytes + report.origin_bytes, rel=1e-9
        )


# ----------------------------------------------------------------------
# Bit-identity across all four replay paths, hierarchy on
# ----------------------------------------------------------------------
class TestFourPathIdentity:
    @pytest.mark.parametrize("policy_name", ["PB", "LRU"])
    def test_two_tier_four_pops(self, workload, policy_name):
        results = assert_replay_paths_identical(
            workload, _config(), policy_name, hierarchy=_hierarchy()
        )
        report = results["event"].hierarchy_report
        assert report.tier_names == ("edge", "parent")
        assert report.requests > 0

    def test_siblings_with_client_clouds(self, workload):
        hierarchy = _hierarchy(
            sibling_lookup=True, sibling_bandwidth=60.0, num_pops=4
        )
        config = _config(
            client_clouds=ClientCloudConfig(
                groups=8, distribution=NLANRBandwidthDistribution()
            )
        )
        results = assert_replay_paths_identical(
            workload, config, "LRU", hierarchy=hierarchy
        )
        # Whole-object edges must actually exercise the lateral path.
        assert results["event"].hierarchy_report.sibling_hits > 0

    def test_per_tier_policy_override(self, workload):
        hierarchy = HierarchyConfig(
            tiers=(
                CacheTier(name="edge", cache_kb=100_000.0, uplink_bandwidth=50.0),
                CacheTier(
                    name="parent",
                    cache_kb=400_000.0,
                    policy="LRU",
                    uplink_bandwidth=40.0,
                ),
            ),
            num_pops=2,
        )
        results = assert_replay_paths_identical(
            workload, _config(), "PB", hierarchy=hierarchy
        )
        assert results["event"].hierarchy_report.tier_bytes[1] > 0.0

    def test_composed_with_observability_timeline(self, workload):
        config = _config(observability=ObservabilityConfig(window_s=1800.0))
        results = assert_replay_paths_identical(
            workload, config, "PB", hierarchy=_hierarchy()
        )
        assert results["event"].timeline is not None

    def test_composed_with_faults(self, workload):
        config = _config(
            faults=FaultConfig(
                random_origin_outages=2, random_bandwidth_flaps=2
            )
        )
        results = assert_replay_paths_identical(
            workload, config, "PB", hierarchy=_hierarchy()
        )
        assert results["event"].fault_report is not None


# ----------------------------------------------------------------------
# Engine semantics (unit level, no replay loop)
# ----------------------------------------------------------------------
class TestEngineSemantics:
    def _engine(self, catalog, **overrides):
        return HierarchyEngine(_hierarchy(**overrides), catalog, "LRU")

    def _serve(self, engine, pop, obj, **overrides):
        kwargs = dict(
            observed=25.0,
            lm_draw=30.0,
            believed=25.0,
            prior_estimate=45.0,
            now=0.0,
            measuring=True,
        )
        kwargs.update(overrides)
        return engine.serve(pop, obj.object_id, obj, obj.size, **kwargs)

    def test_miss_escalates_then_edge_hit_is_uncapped(self, small_catalog):
        engine = self._engine(small_catalog, num_pops=1)
        obj = small_catalog.get(0)
        cached, effective = self._serve(engine, 0, obj)
        assert cached == 0.0
        assert effective == 25.0  # below every uplink: observed untouched
        # LRU admitted the whole object at the edge; a repeat is a full
        # edge hit and the observed bandwidth passes through even above
        # every inter-tier cap.
        cached, effective = self._serve(engine, 0, obj, observed=500.0)
        assert cached == obj.size
        assert effective == 500.0

    def test_origin_fetch_is_capped_by_the_uplink_chain(self, small_catalog):
        engine = self._engine(small_catalog, num_pops=1)
        obj = small_catalog.get(1)
        # chain cap = min(edge 50, parent 40) = 40 < observed.
        _, effective = self._serve(engine, 0, obj, observed=80.0)
        assert effective == 40.0

    def test_tier_absorption_uses_reach_caps_and_accounts_bytes(
        self, small_catalog
    ):
        # A 1 KB edge cannot hold any object, so everything the roomy
        # parent admits is absorbed there on the second pass.
        engine = self._engine(small_catalog, tiers=_tiers(edge_kb=1.0), num_pops=1)
        obj = small_catalog.get(0)
        self._serve(engine, 0, obj)
        cached, effective = self._serve(engine, 0, obj, observed=80.0)
        assert cached == 0.0
        # Absorbed at the parent: capped by the edge uplink (50), then the
        # last mile (30) — the origin draw is out of the picture.
        assert effective == 30.0
        report = engine.report()
        assert report.tier_requests == (2, 2)
        assert report.tier_hits == (0, 1)
        assert report.tier_bytes == (0.0, obj.size)
        assert report.origin_bytes == pytest.approx(obj.size)
        assert report.client_bytes == pytest.approx(2 * obj.size)

    def test_partial_prefixes_serve_incrementally(self, small_catalog):
        engine = self._engine(small_catalog, num_pops=1)
        obj = small_catalog.get(0)
        # Pre-seed cumulative prefixes: 1000 KB at the edge, 3000 KB at
        # the parent, of a 4800 KB object.
        engine._stores[0][0].set_cached_bytes(obj.object_id, 1000.0)
        engine._stores[0][1].set_cached_bytes(obj.object_id, 3000.0)
        cached, effective = self._serve(engine, 0, obj, observed=35.0)
        assert cached == 1000.0
        # The origin still supplies the uncovered tail, so the full chain
        # caps apply: min(observed 35, chain 40) = 35.
        assert effective == 35.0
        report = engine.report()
        assert report.tier_bytes[0] == 1000.0
        assert report.tier_bytes[1] == 2000.0  # parent minus edge prefix
        assert report.origin_bytes == pytest.approx(obj.size - 3000.0)

    def test_sibling_hit_is_read_only_and_capped(self, small_catalog):
        engine = self._engine(
            small_catalog,
            num_pops=2,
            sibling_lookup=True,
            sibling_bandwidth=20.0,
        )
        obj = small_catalog.get(0)
        self._serve(engine, 0, obj)  # warm pop 0's edge
        before = engine.tier_snapshots(0)[0]
        cached, effective = self._serve(engine, 1, obj)
        assert cached == 0.0
        assert effective == 20.0  # min(sibling 20, last mile 30)
        report = engine.report()
        assert report.sibling_hits == 1
        assert report.sibling_bytes == pytest.approx(obj.size)
        # The sibling's store was only read; the client's own edge policy
        # did run (the request is a normal edge request at pop 1).
        assert engine.tier_snapshots(0)[0] == before
        assert engine.edge_cached(1, obj.object_id) == obj.size

    def test_consistency_and_occupancy_span_the_fleet(self, small_catalog):
        engine = self._engine(small_catalog, num_pops=2)
        for obj in small_catalog:
            self._serve(engine, obj.object_id % 2, obj)
        assert engine.verify_consistency()
        assert 0.0 < engine.final_occupancy() <= 1.0
        assert engine.total_cached_objects() >= len(small_catalog)
        assert engine.primary_edge_store is engine._stores[0][0]

    def test_tier_prefix_function_reads_the_snapshot(self, small_catalog):
        prefix_for = tier_prefix_function({0: 1234.0})
        assert prefix_for(small_catalog.get(0)) == 1234.0
        assert prefix_for(small_catalog.get(1)) == 0.0


# ----------------------------------------------------------------------
# Report invariants (Hypothesis over fleet shapes)
# ----------------------------------------------------------------------
class TestReportProperties:
    @given(
        num_pops=st.integers(min_value=1, max_value=3),
        sibling=st.booleans(),
        policy_name=st.sampled_from(("PB", "LRU")),
        edge_kb=st.sampled_from((50_000.0, 150_000.0)),
    )
    @settings(max_examples=10, deadline=None)
    def test_byte_conservation_and_per_tier_bounds(
        self, workload, num_pops, sibling, policy_name, edge_kb
    ):
        hierarchy = HierarchyConfig(
            tiers=_tiers(edge_kb=edge_kb),
            num_pops=num_pops,
            sibling_lookup=sibling and num_pops >= 2,
            sibling_bandwidth=60.0,
        )
        result = ProxyCacheSimulator(
            workload, _config().with_hierarchy(hierarchy)
        ).run(make_policy(policy_name))
        report = result.hierarchy_report
        metrics = result.metrics

        # Conservation: everything delivered came from a tier, a sibling,
        # or the origin.
        assert report.client_bytes == pytest.approx(
            report.tier_absorbed_bytes + report.origin_bytes, rel=1e-9
        )
        # Per-tier bounds: deeper tiers only see the edge's misses, and a
        # tier cannot serve more requests than it saw.
        assert report.requests == metrics.requests
        assert report.tier_requests[0] + report.sibling_hits >= report.requests
        for hits, seen in zip(report.tier_hits, report.tier_requests):
            assert 0 <= hits <= seen
        for deeper, shallower in zip(
            report.tier_requests[1:], report.tier_requests
        ):
            assert deeper <= shallower
        for ratio in report.tier_hit_ratios:
            assert 0.0 <= ratio <= 1.0
        assert sum(report.tier_byte_hit_ratios) <= 1.0 + 1e-9
        assert 0.0 <= report.origin_byte_ratio <= 1.0 + 1e-9
        # The edge tier *is* the cache the aggregate metrics see.
        assert report.tier_byte_hit_ratios[0] == pytest.approx(
            metrics.traffic_reduction_ratio, rel=1e-9
        )

    def test_merge_rejects_empty_and_mismatched_chains(self):
        with pytest.raises(ConfigurationError):
            HierarchyReport.merge([])
        one = HierarchyReport(
            tier_names=("edge",),
            requests=1,
            tier_requests=(1,),
            tier_hits=(0,),
            tier_bytes=(0.0,),
            sibling_hits=0,
            sibling_bytes=0.0,
            origin_bytes=1.0,
            client_bytes=1.0,
        )
        other = HierarchyReport(
            tier_names=("edge", "parent"),
            requests=1,
            tier_requests=(1, 1),
            tier_hits=(0, 0),
            tier_bytes=(0.0, 0.0),
            sibling_hits=0,
            sibling_bytes=0.0,
            origin_bytes=1.0,
            client_bytes=1.0,
        )
        with pytest.raises(ConfigurationError):
            HierarchyReport.merge([one, other])


# ----------------------------------------------------------------------
# Sharded fleet replay
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet(workload):
    """A 4-shard serial fleet replay with a 2-tier, 4-pop hierarchy."""
    config = _config().with_hierarchy(_hierarchy())
    return run_sharded_fleet(
        workload, config, PolicySpec("PB"), num_shards=4, n_jobs=1
    )


class TestClientShard:
    def test_partition_is_exact_and_disjoint(self, workload):
        trace = workload.trace
        shards = [trace.client_shard(s, 4) for s in range(4)]
        assert sum(len(shard) for shard in shards) == len(trace)
        for s, shard in enumerate(shards):
            clients = np.asarray(shard.client_ids_array, dtype=np.int64)
            assert np.all(clients % 4 == s)

    def test_single_shard_is_the_whole_trace(self, workload):
        assert workload.trace.client_shard(0, 1) == workload.trace

    def test_invalid_shard_arguments_rejected(self, workload):
        with pytest.raises(ConfigurationError):
            workload.trace.client_shard(0, 0)
        with pytest.raises(ConfigurationError):
            workload.trace.client_shard(4, 4)
        with pytest.raises(ConfigurationError):
            workload.trace.client_shard(-1, 4)


class TestShardedFleet:
    def test_pooled_replay_matches_serial_exactly(self, workload, fleet):
        config = _config().with_hierarchy(_hierarchy())
        pooled = run_sharded_fleet(
            workload,
            config,
            PolicySpec("PB"),
            num_shards=4,
            n_jobs=2,
            transport="pickle",
        )
        assert pooled.merged.metrics == fleet.merged.metrics
        assert pooled.merged.hierarchy_report == fleet.merged.hierarchy_report
        # Per-shard payloads are bit-identical too (the config field is
        # excluded: distribution objects compare by identity after a
        # round trip through the worker pool).
        for mine, theirs in zip(pooled.shard_results, fleet.shard_results):
            assert mine.metrics == theirs.metrics
            assert mine.hierarchy_report == theirs.hierarchy_report
            assert mine.as_dict() == theirs.as_dict()

    def test_merged_report_is_the_merge_of_shard_reports(self, fleet):
        shard_reports = [
            result.hierarchy_report for result in fleet.shard_results
        ]
        assert fleet.merged.hierarchy_report == HierarchyReport.merge(
            shard_reports
        )
        assert fleet.merged.metrics.requests == sum(
            result.metrics.requests for result in fleet.shard_results
        )

    def test_one_shard_fleet_matches_direct_replay(self, workload):
        config = _config().with_hierarchy(_hierarchy())
        # Fleet workers pre-build the topology from a dedicated generator
        # (every shard must face identical paths); replaying the whole
        # trace under the same convention is the apples-to-apples serial
        # comparator.
        simulator = ProxyCacheSimulator(workload, config)
        topology = simulator.build_topology(np.random.default_rng(config.seed))
        direct = simulator.run(make_policy("PB"), topology=topology)
        fleet_one = run_sharded_fleet(
            workload, config, PolicySpec("PB"), num_shards=1
        )
        merged = fleet_one.merged
        # The single shard replays the identical trace; counters are
        # exact, and the reduction's average->sum->average round trip
        # stays within floating-point noise.
        assert merged.hierarchy_report == direct.hierarchy_report
        assert merged.metrics.requests == direct.metrics.requests
        assert merged.metrics.failed_requests == direct.metrics.failed_requests
        assert merged.metrics.average_service_delay == pytest.approx(
            direct.metrics.average_service_delay, rel=1e-12
        )
        assert merged.metrics.traffic_reduction_ratio == pytest.approx(
            direct.metrics.traffic_reduction_ratio, rel=1e-12
        )

    def test_sharding_works_without_a_hierarchy(self, workload):
        fleet_plain = run_sharded_fleet(
            workload, _config(), PolicySpec("PB"), num_shards=2
        )
        assert fleet_plain.merged.hierarchy_report is None
        assert fleet_plain.merged.metrics.requests == sum(
            result.metrics.requests for result in fleet_plain.shard_results
        )

    def test_sibling_lookup_is_rejected(self, workload):
        config = _config().with_hierarchy(
            _hierarchy(sibling_lookup=True, sibling_bandwidth=60.0)
        )
        with pytest.raises(ConfigurationError):
            run_sharded_fleet(workload, config, PolicySpec("PB"), num_shards=2)

    def test_invalid_shard_count_is_rejected(self, workload):
        with pytest.raises(ConfigurationError):
            run_sharded_fleet(workload, _config(), PolicySpec("PB"), num_shards=0)

    @given(permutation=st.permutations(list(range(4))))
    @settings(max_examples=24, deadline=None)
    def test_merge_is_invariant_under_completion_order(self, fleet, permutation):
        canonical = merge_shard_results(list(enumerate(fleet.shard_results)))
        shuffled = [(index, fleet.shard_results[index]) for index in permutation]
        merged = merge_shard_results(shuffled)
        assert merged.metrics == canonical.metrics
        assert merged.hierarchy_report == canonical.hierarchy_report


# ----------------------------------------------------------------------
# Composing hierarchies with the stream-sharing analysis
# ----------------------------------------------------------------------
class TestSharingComposition:
    def test_per_tier_prefixes_absorb_patch_bytes(self, small_catalog):
        hierarchy = HierarchyConfig(
            tiers=(
                CacheTier(name="edge", cache_kb=6_000.0),
                CacheTier(name="parent", cache_kb=20_000.0),
            )
        )
        engine = HierarchyEngine(hierarchy, small_catalog, "LRU")
        for now, object_id in enumerate((0, 1)):
            obj = small_catalog.get(object_id)
            engine.serve(
                0, object_id, obj, obj.size,
                observed=25.0, lm_draw=None, believed=25.0,
                prior_estimate=45.0, now=float(now), measuring=False,
            )
        snapshots = engine.tier_snapshots(0)
        # Two batches, each with one late joiner inside the playback
        # window, so each joiner needs a patch for what it missed.
        trace = RequestTrace(
            [
                Request(time=0.0, object_id=0),
                Request(time=10.0, object_id=1),
                Request(time=30.0, object_id=0),
                Request(time=50.0, object_id=1),
            ]
        )
        reports = {
            label: StreamSharingAnalyzer(
                small_catalog, prefix_for=prefix_for
            ).analyze(trace)
            for label, prefix_for in (
                ("none", None),
                ("edge", tier_prefix_function(snapshots[0])),
                ("parent", tier_prefix_function(snapshots[1])),
            )
        }
        # Batching is prefix-independent; patch absorption grows with the
        # tier's resident prefix (parent holds both objects whole).
        for report in reports.values():
            assert report.batches == 2
            assert report.joined_requests == 2
            assert report.patch_bytes == reports["none"].patch_bytes > 0
        assert reports["none"].patch_bytes_from_cache == 0.0
        assert (
            reports["none"].patch_bytes_from_cache
            <= reports["edge"].patch_bytes_from_cache
            <= reports["parent"].patch_bytes_from_cache
        )
        assert (
            reports["parent"].patch_bytes_from_cache
            == reports["parent"].patch_bytes
        )


# ----------------------------------------------------------------------
# Golden fixture: experiment hierarchy headline numbers, byte-exact
# ----------------------------------------------------------------------

#: Expected headline numbers of ``experiment_hierarchy`` for the fixed
#: golden parameters below (workload seed 0 at scale 0.02, 32 clients,
#: 2 pops, NLANR client clouds, one run per cell).  Values are asserted
#: with ``==`` — drift in the engine, any replay loop, or the experiment
#: harness must show up as a diff here before it ships.  Regenerate by
#: running the experiment once and updating the literals.
GOLDEN_HIERARCHY = {
    ("1-tier", "PB"): {
        "average_service_delay": 3152.060759729631,
        "traffic_reduction_ratio": 0.07539381028226742,
        "origin_byte_ratio": 0.9246061897177351,
        "tier_edge_byte_hit_ratio": 0.07539381028226765,
        "sibling_hits": 0.0,
    },
    ("1-tier", "LRU"): {
        "average_service_delay": 3930.0215771828575,
        "traffic_reduction_ratio": 0.05274912863710859,
        "origin_byte_ratio": 0.9472508713628928,
        "tier_edge_byte_hit_ratio": 0.052749128637108664,
        "sibling_hits": 0.0,
    },
    ("2-tier", "PB"): {
        "average_service_delay": 3538.197590606882,
        "traffic_reduction_ratio": 0.08625287536016966,
        "origin_byte_ratio": 0.8268559951573573,
        "tier_edge_byte_hit_ratio": 0.08625287536017004,
        "sibling_hits": 0.0,
    },
    ("2-tier", "LRU"): {
        "average_service_delay": 3968.678306893915,
        "traffic_reduction_ratio": 0.05274912863710859,
        "origin_byte_ratio": 0.7743814217225561,
        "tier_edge_byte_hit_ratio": 0.052749128637108664,
        "sibling_hits": 0.0,
    },
    ("2-tier+siblings", "PB"): {
        "average_service_delay": 3538.197590606882,
        "traffic_reduction_ratio": 0.08625287536016966,
        "origin_byte_ratio": 0.8268559951573573,
        "tier_edge_byte_hit_ratio": 0.08625287536017004,
        "sibling_hits": 0.0,
    },
    ("2-tier+siblings", "LRU"): {
        "average_service_delay": 3909.6531569706617,
        "traffic_reduction_ratio": 0.05274912863710859,
        "origin_byte_ratio": 0.7533153307285114,
        "tier_edge_byte_hit_ratio": 0.052749128637108664,
        "sibling_hits": 52.0,
    },
}


@pytest.fixture(scope="module")
def hierarchy_experiment():
    return experiment_hierarchy(
        policies=("PB", "LRU"),
        cache_fraction=0.05,
        scale=0.02,
        num_runs=1,
        seed=0,
        client_groups=8,
        num_clients=32,
        num_pops=2,
    )


class TestGoldenExperiment:
    def test_headline_numbers_are_byte_exact(self, hierarchy_experiment):
        result = hierarchy_experiment
        observed = {}
        for setting in result.data["hierarchy_settings"]:
            comparison = result.data["comparisons"][setting]
            for policy_name in ("PB", "LRU"):
                metrics = comparison.metrics_by_policy[policy_name]
                report = result.data["hierarchy_reports"][setting][policy_name]
                observed[(setting, policy_name)] = {
                    "average_service_delay": metrics.average_service_delay,
                    "traffic_reduction_ratio": metrics.traffic_reduction_ratio,
                    "origin_byte_ratio": report["origin_byte_ratio"],
                    "tier_edge_byte_hit_ratio": report[
                        "tier_edge_byte_hit_ratio"
                    ],
                    "sibling_hits": report["sibling_hits"],
                }
        assert observed == GOLDEN_HIERARCHY

    def test_headline_narrative_holds(self, hierarchy_experiment):
        reports = hierarchy_experiment.data["hierarchy_reports"]
        for policy_name in ("PB", "LRU"):
            # The parent tier absorbs edge-miss bytes.
            assert (
                reports["2-tier"][policy_name]["origin_byte_ratio"]
                < reports["1-tier"][policy_name]["origin_byte_ratio"]
            )
        # ICP sibling probes need the whole object at a peer edge, so they
        # reward whole-object admission and do nothing for prefix caching.
        assert reports["2-tier+siblings"]["LRU"]["sibling_hits"] > 0
        assert reports["2-tier+siblings"]["PB"]["sibling_hits"] == 0

    def test_needs_at_least_two_pops(self):
        with pytest.raises(ConfigurationError):
            experiment_hierarchy(num_pops=1, scale=0.02)
