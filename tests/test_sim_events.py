"""The auxiliary-event subsystem: periodic bandwidth re-measurement and the
columnar event path.

Two families of guarantees are pinned here:

* **Equivalence** — with no auxiliary events scheduled, the columnar event
  path is bit-identical to the fast, columnar-fast, and event-calendar
  paths for *every registered policy*; with re-measurement enabled, the
  classic event calendar and the columnar event path still agree
  bit-for-bit (same events, same order, same estimator trajectory).
* **Re-measurement semantics** — cadence windows (longer than the trace,
  explicit start/end), per-path overrides, probing-client staggering,
  warm-up interaction, empty traces, and the measurement log's accounting.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.policies import POLICY_REGISTRY, make_policy
from repro.exceptions import ConfigurationError, SimulationError
from repro.network.measurement import BandwidthMeasurementLog
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.events import (
    AuxiliarySchedule,
    BandwidthRemeasurement,
    PeriodicEvent,
    RemeasurementConfig,
    build_remeasurement_events,
)
from repro.sim.simulator import ProxyCacheSimulator
from repro.trace.columnar import ColumnarTrace
from repro.workload.gismo import GismoWorkloadGenerator, Workload, WorkloadConfig

from conftest import assert_replay_paths_identical


@pytest.fixture(scope="module")
def columnar_workload():
    config = WorkloadConfig(seed=7).scaled(0.02)  # 100 objects, 2000 requests
    return GismoWorkloadGenerator(config).generate(columnar=True)


def _passive_config(**overrides):
    defaults = dict(
        cache_size_gb=0.5,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


# ----------------------------------------------------------------------
# Equivalence: no auxiliary events -> all four invocations bit-identical.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy_name", sorted(POLICY_REGISTRY))
def test_columnar_event_path_bit_identical_per_policy(columnar_workload, policy_name):
    config = SimulationConfig(
        cache_size_gb=0.5, variability=NLANRRatioVariability(), seed=11
    )
    results = assert_replay_paths_identical(
        columnar_workload, config, policy_name
    )
    colev = results["columnar-event"]
    assert colev.replay_path == "columnar-event"
    assert not colev.used_fast_path
    assert colev.auxiliary_events_fired == 0


def test_auto_prefers_fast_without_events_and_columnar_event_with(columnar_workload):
    plain = ProxyCacheSimulator(columnar_workload, _passive_config())
    assert plain.run(make_policy("PB")).replay_path == "fast"

    remeasuring = ProxyCacheSimulator(
        columnar_workload,
        _passive_config(remeasurement=RemeasurementConfig(interval=200.0)),
    )
    result = remeasuring.run(make_policy("PB"))
    assert result.replay_path == "columnar-event"
    assert result.auxiliary_events_fired > 0


def test_auto_falls_back_to_event_calendar_for_object_traces():
    workload = GismoWorkloadGenerator(WorkloadConfig(seed=7).scaled(0.02)).generate()
    config = _passive_config(remeasurement=RemeasurementConfig(interval=200.0))
    result = ProxyCacheSimulator(workload, config).run(make_policy("PB"))
    assert result.replay_path == "event"
    assert result.auxiliary_events_fired > 0


# ----------------------------------------------------------------------
# Equivalence: re-measurement on, both event-capable paths agree.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy_name", ["PB", "IB", "LRU"])
def test_event_and_columnar_event_agree_under_remeasurement(
    columnar_workload, policy_name
):
    config = _passive_config(remeasurement=RemeasurementConfig(interval=150.0))
    simulator = ProxyCacheSimulator(columnar_workload, config)
    topology = simulator.build_topology(np.random.default_rng(config.seed))

    calendar = simulator.run(
        make_policy(policy_name), topology=topology, replay="event"
    )
    colev = simulator.run(
        make_policy(policy_name), topology=topology, replay="columnar-event"
    )

    assert calendar.auxiliary_events_fired == colev.auxiliary_events_fired > 0
    assert calendar.as_dict() == colev.as_dict()
    # The measurement logs saw the same samples in the same order.
    assert calendar.measurement_log.as_dict() == colev.measurement_log.as_dict()


def test_remeasurement_changes_passive_estimates(columnar_workload):
    base_config = _passive_config()
    simulator = ProxyCacheSimulator(columnar_workload, base_config)
    topology = simulator.build_topology(np.random.default_rng(base_config.seed))

    plain = simulator.run(make_policy("PB"), topology=topology)
    remeasured = ProxyCacheSimulator(
        columnar_workload,
        replace(base_config, remeasurement=RemeasurementConfig(interval=150.0)),
    ).run(make_policy("PB"), topology=topology)

    # Out-of-band samples moved the estimator between requests, so the
    # policy made at least some different decisions.
    assert remeasured.auxiliary_events_fired > 0
    assert remeasured.as_dict() != plain.as_dict()


def test_remeasurement_keeps_request_draws_untouched(columnar_workload):
    """The probe stream has its own RNG: oracle-knowledge metrics are
    unchanged by re-measurement (only the estimator could react, and under
    ORACLE no policy reads it)."""
    oracle = SimulationConfig(
        cache_size_gb=0.5, variability=NLANRRatioVariability(), seed=11
    )
    simulator = ProxyCacheSimulator(columnar_workload, oracle)
    topology = simulator.build_topology(np.random.default_rng(oracle.seed))
    plain = simulator.run(make_policy("PB"), topology=topology)

    remeasured_result = ProxyCacheSimulator(
        columnar_workload,
        replace(oracle, remeasurement=RemeasurementConfig(interval=150.0)),
    ).run(make_policy("PB"), topology=topology)
    assert remeasured_result.auxiliary_events_fired > 0
    assert remeasured_result.as_dict() == plain.as_dict()


# ----------------------------------------------------------------------
# Forcing replay paths.
# ----------------------------------------------------------------------
def test_forced_fast_path_raises_with_remeasurement(columnar_workload):
    config = _passive_config(remeasurement=RemeasurementConfig(interval=200.0))
    simulator = ProxyCacheSimulator(columnar_workload, config)
    with pytest.raises(SimulationError):
        simulator.run(make_policy("PB"), use_fast_path=True)
    with pytest.raises(SimulationError):
        simulator.run(make_policy("PB"), replay="fast")


def test_forced_columnar_event_requires_columnar_trace():
    workload = GismoWorkloadGenerator(WorkloadConfig(seed=7).scaled(0.02)).generate()
    simulator = ProxyCacheSimulator(workload, _passive_config())
    with pytest.raises(SimulationError):
        simulator.run(make_policy("PB"), replay="columnar-event")


def test_unknown_replay_path_rejected(columnar_workload):
    simulator = ProxyCacheSimulator(columnar_workload, _passive_config())
    with pytest.raises(SimulationError):
        simulator.run(make_policy("PB"), replay="warp")


class _HookSimulator(ProxyCacheSimulator):
    def schedule_auxiliary_events(self, engine, topology, store, collector):
        engine.schedule(0.0, lambda engine, payload: None)


def test_hook_events_force_classic_event_path(columnar_workload):
    simulator = _HookSimulator(columnar_workload, _passive_config())
    result = simulator.run(make_policy("PB"))
    assert result.replay_path == "event"
    with pytest.raises(SimulationError):
        simulator.run(make_policy("PB"), replay="columnar-event")


# ----------------------------------------------------------------------
# Re-measurement edge cases.
# ----------------------------------------------------------------------
def test_cadence_longer_than_trace_never_fires(columnar_workload):
    duration = columnar_workload.trace.duration
    config = _passive_config(
        remeasurement=RemeasurementConfig(interval=duration * 10)
    )
    simulator = ProxyCacheSimulator(columnar_workload, config)
    result = simulator.run(make_policy("PB"))
    assert result.auxiliary_events_fired == 0
    assert result.measurement_log.total_samples == 0

    # With zero firings the run is bit-identical to no re-measurement at
    # all (the auxiliary machinery must be inert, not merely quiet).
    topology = simulator.build_topology(np.random.default_rng(config.seed))
    again = simulator.run(make_policy("PB"), topology=topology)
    plain = ProxyCacheSimulator(columnar_workload, _passive_config()).run(
        make_policy("PB"), topology=topology
    )
    assert again.as_dict() == plain.as_dict()


def test_zero_request_trace(columnar_workload):
    empty = Workload(
        catalog=columnar_workload.catalog,
        trace=ColumnarTrace(np.empty(0), np.empty(0, np.int64)),
        config=columnar_workload.config,
    )
    config = _passive_config(remeasurement=RemeasurementConfig(interval=10.0))
    result = ProxyCacheSimulator(empty, config).run(make_policy("PB"))
    assert result.metrics.requests == 0
    assert result.auxiliary_events_fired == 0  # empty window: start == end


def test_explicit_window_fires_past_last_request(columnar_workload):
    start = columnar_workload.trace.start_time
    config = _passive_config(
        remeasurement=RemeasurementConfig(
            interval=100.0,
            start_time=start,
            end_time=columnar_workload.trace.end_time + 1000.0,
            paths=[0],
        )
    )
    simulator = ProxyCacheSimulator(columnar_workload, config)
    topology = simulator.build_topology(np.random.default_rng(config.seed))
    calendar = simulator.run(make_policy("PB"), topology=topology, replay="event")
    colev = simulator.run(
        make_policy("PB"), topology=topology, replay="columnar-event"
    )
    window = config.remeasurement.end_time - start
    expected = int(window / 100.0)
    assert calendar.auxiliary_events_fired == colev.auxiliary_events_fired
    assert abs(calendar.auxiliary_events_fired - expected) <= 1
    assert calendar.as_dict() == colev.as_dict()


def test_warmup_boundary_samples_feed_estimator_but_not_metrics(columnar_workload):
    """Events during warm-up prime the estimator yet never touch metrics:
    the measured-request count is exactly the non-warm-up tail."""
    config = _passive_config(
        warmup_fraction=0.9,
        remeasurement=RemeasurementConfig(interval=100.0),
    )
    result = ProxyCacheSimulator(columnar_workload, config).run(make_policy("PB"))
    total = len(columnar_workload.trace)
    cutoff = int(0.9 * total)
    assert result.warmup_requests == cutoff
    assert result.metrics.requests == total - cutoff
    assert result.auxiliary_events_fired > 0


def test_per_path_intervals_and_paths_filter(columnar_workload):
    config = _passive_config(
        remeasurement=RemeasurementConfig(
            interval=500.0,
            per_path_intervals={0: 100.0},
            paths=[0, 1],
        )
    )
    simulator = ProxyCacheSimulator(columnar_workload, config)
    result = simulator.run(make_policy("PB"))
    log = result.measurement_log
    assert log.servers() == [0, 1]
    # Server 0's override is 5x faster than server 1's default cadence.
    assert log.sample_count(0) > log.sample_count(1) > 0
    assert log.sample_count(0) == pytest.approx(5 * log.sample_count(1), abs=5)


def test_probing_clients_multiply_cadence(columnar_workload):
    base = _passive_config(
        remeasurement=RemeasurementConfig(interval=400.0, paths=[0])
    )
    doubled = _passive_config(
        remeasurement=RemeasurementConfig(
            interval=400.0, paths=[0], probing_clients=2
        )
    )
    single = ProxyCacheSimulator(columnar_workload, base).run(make_policy("PB"))
    double = ProxyCacheSimulator(columnar_workload, doubled).run(make_policy("PB"))
    assert double.auxiliary_events_fired == pytest.approx(
        2 * single.auxiliary_events_fired, abs=2
    )


def test_unknown_path_filter_rejected(columnar_workload):
    config = _passive_config(
        remeasurement=RemeasurementConfig(interval=100.0, paths=[999_999])
    )
    with pytest.raises(ConfigurationError):
        ProxyCacheSimulator(columnar_workload, config).run(make_policy("PB"))


def test_unknown_per_path_override_rejected(columnar_workload):
    """A typo'd per-path cadence override fails loudly, not silently."""
    config = _passive_config(
        remeasurement=RemeasurementConfig(
            interval=100.0, per_path_intervals={999_999: 10.0}
        )
    )
    with pytest.raises(ConfigurationError):
        ProxyCacheSimulator(columnar_workload, config).run(make_policy("PB"))


# ----------------------------------------------------------------------
# Config validation and primitives.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        dict(interval=0.0),
        dict(interval=-1.0),
        dict(interval=10.0, per_path_intervals={3: 0.0}),
        dict(interval=10.0, probing_clients=0),
        dict(interval=10.0, priority=0),
        dict(interval=10.0, start_time=100.0, end_time=50.0),
    ],
)
def test_remeasurement_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        RemeasurementConfig(**kwargs)


def test_periodic_event_priority_zero_reserved():
    with pytest.raises(ConfigurationError):
        PeriodicEvent(interval=1.0, first_time=0.0, end_time=10.0, priority=0)


def test_periodic_event_advance_stops_at_end():
    event = PeriodicEvent(interval=4.0, first_time=4.0, end_time=10.0)
    assert event.advance() == 8.0
    assert event.advance() is None


class _CountingEvent(PeriodicEvent):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.times = []

    def fire(self, now):
        self.times.append(now)


def test_schedule_drivers_fire_identically():
    """The engine driver and the merge-heap driver fire the same events at
    the same times."""

    def fresh():
        return [
            _CountingEvent(interval=3.0, first_time=3.0, end_time=10.0),
            _CountingEvent(interval=5.0, first_time=5.0, end_time=10.0),
        ]

    engine_events = fresh()
    engine_schedule = AuxiliarySchedule(engine_events)
    engine = SimulationEngine()
    engine_schedule.schedule_into(engine)
    engine.run()

    heap_events = fresh()
    heap_schedule = AuxiliarySchedule(heap_events)
    heap_schedule.begin()
    heap_schedule.drain()

    assert engine_schedule.fired == heap_schedule.fired == 5
    assert [e.times for e in engine_events] == [e.times for e in heap_events]
    assert engine_events[0].times == [3.0, 6.0, 9.0]
    assert engine_events[1].times == [5.0, 10.0]


def test_measurement_log_statistics():
    log = BandwidthMeasurementLog()
    for time, value in [(1.0, 100.0), (2.0, 50.0), (3.0, 150.0)]:
        log.record(time, 7, value)
    log.record(4.0, 9, 80.0)
    assert log.total_samples == 4
    assert log.servers() == [7, 9]
    assert log.sample_count(7) == 3
    assert log.mean(7) == pytest.approx(100.0)
    assert log.last_sample(7) == 150.0
    assert log.last_sample_time(7) == 3.0
    summary = log.as_dict()
    assert summary[7]["min"] == 50.0 and summary[7]["max"] == 150.0
    assert log.mean(12345) is None


def test_build_remeasurement_events_skips_never_firing_streams(columnar_workload):
    config = RemeasurementConfig(interval=50.0)
    simulator = ProxyCacheSimulator(columnar_workload, _passive_config())
    topology = simulator.build_topology(np.random.default_rng(0))
    events = build_remeasurement_events(
        config, topology, None, None, trace_start=0.0, trace_end=10.0, base_seed=0
    )
    assert events == []  # first firing at t=50 is past the 10s window
    events = build_remeasurement_events(
        config, topology, None, None, trace_start=0.0, trace_end=200.0, base_seed=0
    )
    assert len(events) == len(topology.paths)
    assert all(isinstance(event, BandwidthRemeasurement) for event in events)
