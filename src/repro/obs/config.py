"""Observability configuration: what to record, how often, and where.

A single frozen :class:`ObservabilityConfig` travels on
:class:`repro.sim.config.SimulationConfig` and switches on any subset of
the three observability layers (see :mod:`repro.obs`):

* the windowed :class:`~repro.obs.timeline.MetricsTimeline` recorder,
* the JSONL :class:`~repro.obs.tracing.TraceSink` event trace,
* the :class:`~repro.obs.profiling.StageProfiler` per-stage timers.

The default-constructed config enables only the timeline; ``None`` on the
simulation config (the default) disables observability entirely and keeps
the replay loops on their uninstrumented hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError

__all__ = ["ObservabilityConfig"]

#: Trace levels accepted by :class:`ObservabilityConfig` and
#: :class:`repro.obs.tracing.TraceSink`, least to most verbose.
TRACE_LEVELS = ("info", "debug")


@dataclass(frozen=True)
class ObservabilityConfig:
    """Which observability layers to enable for a simulation run.

    Attributes:
        window_s: Width of each timeline window in simulated seconds.
        timeline: Record a :class:`~repro.obs.timeline.MetricsTimeline`
            onto ``SimulationResult.timeline``.
        trace_path: Path of a JSONL trace file to write, or ``None`` to
            disable event tracing.
        trace_level: Minimum level written to the trace (``"info"`` or
            ``"debug"``); ``"debug"`` additionally records per-object
            cache admissions/evictions and retry attempts.
        trace_sample: Fraction of events kept per event type, in
            ``(0, 1]``; sampling is deterministic (a fixed stride per
            event name), never random, so it cannot perturb the
            simulation's RNG streams.
        profile: Collect per-stage wall-clock timers onto
            ``SimulationResult.profile``.  Profiling wraps per-request
            callables, so a profiled run is slower; the simulated
            metrics are unchanged.
    """

    window_s: float = 60.0
    timeline: bool = True
    trace_path: Optional[str] = None
    trace_level: str = "info"
    trace_sample: float = 1.0
    profile: bool = False

    def __post_init__(self) -> None:
        """Validate window width, trace level, and sampling fraction."""
        if not self.window_s > 0:
            raise ConfigurationError(
                f"window_s must be positive, got {self.window_s!r}"
            )
        if self.trace_level not in TRACE_LEVELS:
            raise ConfigurationError(
                f"trace_level must be one of {TRACE_LEVELS}, "
                f"got {self.trace_level!r}"
            )
        if not 0.0 < self.trace_sample <= 1.0:
            raise ConfigurationError(
                f"trace_sample must be in (0, 1], got {self.trace_sample!r}"
            )

    @property
    def any_enabled(self) -> bool:
        """Whether any observability layer is switched on."""
        return self.timeline or self.trace_path is not None or self.profile
