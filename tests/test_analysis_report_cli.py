"""Tests for report formatting and the command-line interface."""

import pytest

from repro.analysis.experiments import (
    experiment_fig2_bandwidth_distribution,
    experiment_fig5_constant_bandwidth,
    experiment_table1_workload,
)
from repro.analysis.report import (
    format_comparison,
    format_metrics,
    format_sweep_table,
    render_experiment,
)
from repro.cli import build_parser, main
from repro.core.policies import make_policy
from repro.sim.config import SimulationConfig
from repro.sim.runner import compare_policies, sweep_cache_sizes


@pytest.fixture(scope="module")
def tiny_sweep():
    from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

    workload = GismoWorkloadGenerator(
        WorkloadConfig(num_objects=40, num_requests=800, num_servers=8, seed=2)
    ).generate()
    return sweep_cache_sizes(
        workload,
        {"IF": lambda: make_policy("IF"), "PB": lambda: make_policy("PB")},
        cache_sizes_gb=[0.05, 0.2],
        config=SimulationConfig(cache_size_gb=0.05, seed=1),
        num_runs=1,
    )


@pytest.fixture(scope="module")
def tiny_comparison():
    from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

    workload = GismoWorkloadGenerator(
        WorkloadConfig(num_objects=40, num_requests=800, num_servers=8, seed=2)
    ).generate()
    return compare_policies(
        workload,
        {"IF": lambda: make_policy("IF"), "PB": lambda: make_policy("PB")},
        SimulationConfig(cache_size_gb=0.1, seed=1),
        num_runs=1,
    )


class TestReportFormatting:
    def test_sweep_table_contains_policies_and_values(self, tiny_sweep):
        table = format_sweep_table(tiny_sweep, "traffic_reduction_ratio")
        assert "IF" in table and "PB" in table
        assert "cache_size_gb" in table
        assert len(table.splitlines()) == 2 + len(tiny_sweep.parameter_values)

    def test_comparison_table(self, tiny_comparison):
        table = format_comparison(tiny_comparison)
        assert "Traffic Reduction Ratio" in table
        assert "IF" in table and "PB" in table

    def test_format_metrics_lines(self, tiny_comparison):
        metrics = tiny_comparison.metrics_by_policy["PB"]
        text = format_metrics(metrics)
        assert "traffic_reduction_ratio" in text
        assert "average_service_delay" in text

    def test_render_sweep_experiment(self):
        result = experiment_fig5_constant_bandwidth(
            scale=0.01, num_runs=1, cache_fractions=(0.05,), seed=0
        )
        text = render_experiment(result)
        assert "fig5" in text
        assert "Traffic Reduction Ratio" in text
        assert "Paper reference:" in text

    def test_render_scalar_experiment(self):
        result = experiment_fig2_bandwidth_distribution(num_records=3_000, seed=0)
        text = render_experiment(result)
        assert "fraction_below_50" in text

    def test_render_table1(self):
        text = render_experiment(experiment_table1_workload(scale=0.01))
        assert "objects" in text


class TestCLI:
    def test_parser_knows_both_commands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--policy", "IB", "--cache-gb", "2"])
        assert args.command == "run" and args.policy == "IB"
        args = parser.parse_args(["experiment", "tab1"])
        assert args.command == "experiment" and args.name == "tab1"

    def test_run_command_prints_metrics(self, capsys):
        exit_code = main(
            ["run", "--policy", "PB", "--cache-gb", "0.2", "--scale", "0.01", "--seed", "1"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "traffic_reduction_ratio" in captured
        assert "policy: PB" in captured

    def test_run_command_with_estimator(self, capsys):
        exit_code = main(
            [
                "run", "--policy", "PB", "--estimator-e", "0.5",
                "--cache-gb", "0.2", "--scale", "0.01",
                "--variability", "measured",
            ]
        )
        assert exit_code == 0
        assert "PB(e=0.5)" in capsys.readouterr().out

    def test_experiment_command_tab1(self, capsys):
        exit_code = main(["experiment", "tab1", "--scale", "0.01"])
        assert exit_code == 0
        assert "objects" in capsys.readouterr().out

    def test_experiment_command_fig2(self, capsys):
        exit_code = main(["experiment", "fig2"])
        assert exit_code == 0
        assert "fraction_below_50" in capsys.readouterr().out

    def test_experiment_command_fig5_scaled(self, capsys):
        exit_code = main(["experiment", "fig5", "--scale", "0.01", "--runs", "1"])
        assert exit_code == 0
        assert "Traffic Reduction Ratio" in capsys.readouterr().out

    def test_unknown_policy_fails_cleanly(self):
        with pytest.raises(Exception):
            main(["run", "--policy", "BOGUS", "--scale", "0.01"])

    def test_run_command_with_streaming_prints_qoe(self, capsys):
        exit_code = main(
            [
                "run", "--policy", "PB", "--cache-gb", "0.2",
                "--scale", "0.01", "--seed", "1",
                "--streaming-fraction", "1.0", "--streaming-prefetch", "2",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "streaming:" in captured and "prefix caching" in captured
        assert "streaming QoE:" in captured
        assert "average_stream_quality" in captured

    def test_run_command_streaming_whole_object_mode(self, capsys):
        exit_code = main(
            [
                "run", "--policy", "PB", "--cache-gb", "0.2",
                "--scale", "0.01", "--seed", "1",
                "--streaming-fraction", "1.0", "--streaming-whole-object",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "whole-object caching" in captured

    def test_streaming_whole_object_requires_fraction(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "run", "--policy", "PB", "--scale", "0.01",
                    "--streaming-whole-object",
                ]
            )

    def test_experiment_command_streaming(self, capsys):
        exit_code = main(
            ["experiment", "streaming", "--scale", "0.01", "--runs", "1"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "prefix / static" in captured
        assert "whole-object / reactive-passive" in captured
        assert "QoE[PB]" in captured
