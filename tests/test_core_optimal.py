"""Tests for the offline optimal (fractional knapsack) allocation."""

import pytest

from repro.core.policies.optimal import (
    StaticAllocationPolicy,
    optimal_allocation,
    optimal_average_delay,
)
from repro.core.store import CacheStore
from repro.exceptions import ConfigurationError
from repro.workload.catalog import Catalog, MediaObject


@pytest.fixture
def knapsack_catalog():
    """Three bottlenecked objects plus one with abundant bandwidth."""
    return Catalog(
        [
            MediaObject(object_id=0, duration=100.0, bitrate=48.0, server_id=0),
            MediaObject(object_id=1, duration=100.0, bitrate=48.0, server_id=1),
            MediaObject(object_id=2, duration=100.0, bitrate=48.0, server_id=2),
            MediaObject(object_id=3, duration=100.0, bitrate=48.0, server_id=3),
        ]
    )


@pytest.fixture
def bandwidths():
    # Object 3's path already covers the bit-rate; the others do not.
    return {0: 8.0, 1: 24.0, 2: 24.0, 3: 96.0}


@pytest.fixture
def rates():
    return {0: 10.0, 1: 10.0, 2: 1.0, 3: 100.0}


class TestOptimalAllocation:
    def test_never_caches_objects_with_abundant_bandwidth(
        self, knapsack_catalog, bandwidths, rates
    ):
        allocation = optimal_allocation(knapsack_catalog, bandwidths, rates, 1e9)
        assert 3 not in allocation

    def test_caches_at_most_required_prefix(self, knapsack_catalog, bandwidths, rates):
        allocation = optimal_allocation(knapsack_catalog, bandwidths, rates, 1e9)
        assert allocation[0] == pytest.approx((48.0 - 8.0) * 100.0)
        assert allocation[1] == pytest.approx((48.0 - 24.0) * 100.0)
        assert allocation[2] == pytest.approx((48.0 - 24.0) * 100.0)

    def test_ranking_by_rate_over_bandwidth(self, knapsack_catalog, bandwidths, rates):
        # Capacity for one full prefix only: object 0 has lambda/b = 10/8, the
        # highest, so it must be served first.
        allocation = optimal_allocation(knapsack_catalog, bandwidths, rates, 4_000.0)
        assert allocation[0] == pytest.approx(4_000.0)
        assert 1 not in allocation and 2 not in allocation

    def test_marginal_object_gets_fraction(self, knapsack_catalog, bandwidths, rates):
        capacity = 4_000.0 + 1_000.0
        allocation = optimal_allocation(knapsack_catalog, bandwidths, rates, capacity)
        assert allocation[0] == pytest.approx(4_000.0)
        assert allocation[1] == pytest.approx(1_000.0)

    def test_respects_capacity(self, knapsack_catalog, bandwidths, rates):
        capacity = 3_456.0
        allocation = optimal_allocation(knapsack_catalog, bandwidths, rates, capacity)
        assert sum(allocation.values()) <= capacity + 1e-9

    def test_zero_capacity_allocates_nothing(self, knapsack_catalog, bandwidths, rates):
        assert optimal_allocation(knapsack_catalog, bandwidths, rates, 0.0) == {}

    def test_validation(self, knapsack_catalog, rates):
        with pytest.raises(ConfigurationError):
            optimal_allocation(knapsack_catalog, {0: 8.0}, rates, -1.0)
        with pytest.raises(ConfigurationError):
            optimal_allocation(
                knapsack_catalog, {0: 0.0, 1: 1.0, 2: 1.0, 3: 1.0}, rates, 100.0
            )

    def test_optimality_against_exhaustive_alternatives(
        self, knapsack_catalog, bandwidths, rates
    ):
        """The greedy fractional-knapsack solution beats perturbed allocations."""
        capacity = 5_000.0
        best = optimal_allocation(knapsack_catalog, bandwidths, rates, capacity)
        best_delay = optimal_average_delay(knapsack_catalog, bandwidths, rates, best)
        # Move 500 KB from the most valuable object to each other object in
        # turn; the objective must never improve.
        for other in (1, 2):
            perturbed = dict(best)
            perturbed[0] = perturbed.get(0, 0.0) - 500.0
            perturbed[other] = perturbed.get(other, 0.0) + 500.0
            delay = optimal_average_delay(knapsack_catalog, bandwidths, rates, perturbed)
            assert delay >= best_delay - 1e-9


class TestOptimalAverageDelay:
    def test_zero_rates_give_zero_delay(self, knapsack_catalog, bandwidths):
        assert optimal_average_delay(knapsack_catalog, bandwidths, {}, {}) == 0.0

    def test_full_allocation_eliminates_delay(self, knapsack_catalog, bandwidths, rates):
        allocation = optimal_allocation(knapsack_catalog, bandwidths, rates, 1e9)
        assert optimal_average_delay(
            knapsack_catalog, bandwidths, rates, allocation
        ) == pytest.approx(0.0)

    def test_empty_allocation_matches_manual_computation(
        self, knapsack_catalog, bandwidths, rates
    ):
        delay = optimal_average_delay(knapsack_catalog, bandwidths, rates, {})
        total_rate = sum(rates.values())
        expected = (
            rates[0] * (48.0 - 8.0) * 100.0 / 8.0
            + rates[1] * (48.0 - 24.0) * 100.0 / 24.0
            + rates[2] * (48.0 - 24.0) * 100.0 / 24.0
        ) / total_rate
        assert delay == pytest.approx(expected)


class TestStaticAllocationPolicy:
    def test_install_populates_store(self, knapsack_catalog, bandwidths, rates):
        allocation = optimal_allocation(knapsack_catalog, bandwidths, rates, 6_000.0)
        policy = StaticAllocationPolicy(allocation)
        store = CacheStore(6_000.0)
        policy.install(store, knapsack_catalog)
        assert store.used_kb == pytest.approx(sum(allocation.values()))

    def test_on_request_never_changes_cache(self, knapsack_catalog):
        policy = StaticAllocationPolicy({0: 1_000.0})
        store = CacheStore(5_000.0)
        policy.install(store, knapsack_catalog)
        before = store.snapshot()
        policy.on_request(knapsack_catalog.get(1), bandwidth=5.0, now=1.0, store=store)
        assert store.snapshot() == before
        assert policy.frequencies.total_requests == 1

    def test_install_caps_at_object_size(self, knapsack_catalog):
        policy = StaticAllocationPolicy({0: 1e9})
        store = CacheStore(1e9)
        policy.install(store, knapsack_catalog)
        assert store.cached_bytes(0) == pytest.approx(knapsack_catalog.get(0).size)

    def test_reset_keeps_allocation(self, knapsack_catalog):
        policy = StaticAllocationPolicy({0: 500.0})
        store = CacheStore(5_000.0)
        policy.install(store, knapsack_catalog)
        policy.on_request(knapsack_catalog.get(0), bandwidth=5.0, now=0.0, store=store)
        policy.reset()
        assert policy.frequencies.total_requests == 0
        assert store.cached_bytes(0) == 500.0
