"""The observability layers (``repro.obs``): timelines, tracing, profiling.

Pinned guarantees, mirroring the acceptance criteria of the subsystem:

* **Path identity** — with the timeline enabled, the per-window metrics
  are bit-identical across all four replay paths (event calendar, object
  fast path, columnar fast path, columnar event path) under the richest
  configuration (passive knowledge + reactive re-keying + faults).
* **Zero drift** — a run with observability absent, with a
  configured-but-disabled :class:`ObservabilityConfig`, and with the
  timeline enabled all produce bit-identical metrics; observation is
  read-only.
* **Exactness** — the timeline's final cumulative row equals the run's
  aggregates (not approximately: it *is* the accumulators), integer
  per-window deltas sum back exactly, and window sums reproduce the
  aggregate counters.
* **Trace semantics** — JSONL schema, level filtering, deterministic
  (never random) sampling with exempt run boundaries.
* **Profiler hygiene** — wrappers attach as instance attributes, detach
  cleanly, and refuse slotted objects instead of crashing the run.
"""

import importlib.util
import io
import json
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.core.policies import make_policy
from repro.core.store import CacheStore
from repro.exceptions import ConfigurationError
from repro.network.variability import NLANRRatioVariability
from repro.obs import (
    CUMULATIVE_FIELDS,
    MetricsTimeline,
    ObservabilityConfig,
    ObservedCacheStore,
    StageProfiler,
    TraceSink,
)
from repro.obs.log import configure, get_logger
from repro.obs.timeline import _INTEGER_FIELDS
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.faults import FaultConfig
from repro.sim.simulator import ProxyCacheSimulator
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

from conftest import run_replay_paths

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Timeline window width used throughout: a handful of windows over the
#: 0.02-scale trace, so boundaries fall mid-run on every path.
WINDOW_S = 1800.0


@pytest.fixture(scope="module")
def workloads():
    """Object and columnar variants of the same 2000-request workload."""
    config = WorkloadConfig(seed=0).scaled(0.02)
    return {
        "object": GismoWorkloadGenerator(config).generate(columnar=False),
        "columnar": GismoWorkloadGenerator(config).generate(columnar=True),
    }


def _rich_config(**overrides):
    """Passive + reactive + faulted: every counter the timeline reads moves."""
    base = dict(
        cache_size_gb=0.05,
        variability=NLANRRatioVariability(),
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        reactive_threshold=0.15,
        reactive_passive=True,
        reactive_hysteresis=0.05,
        faults=FaultConfig(random_origin_outages=2, seed=1),
        seed=0,
    )
    base.update(overrides)
    return SimulationConfig(**base)


@pytest.fixture(scope="module")
def path_results(workloads):
    """One observed run per replay path under the rich configuration."""
    config = _rich_config(observability=ObservabilityConfig(window_s=WINDOW_S))
    return run_replay_paths(workloads["columnar"], config)


# ----------------------------------------------------------------------
# Timeline identity and exactness
# ----------------------------------------------------------------------
class TestTimelineAcrossPaths:
    def test_metrics_identical_across_paths(self, path_results):
        reference = path_results["event"]
        for key, result in path_results.items():
            assert result.metrics.as_dict() == reference.metrics.as_dict(), key

    def test_timelines_identical_across_paths(self, path_results):
        reference = path_results["event"].timeline
        assert reference is not None and reference.finished
        assert reference.num_windows > 2
        for key, result in path_results.items():
            assert result.timeline == reference, key

    def test_series_identical_across_paths(self, path_results):
        reference = path_results["event"].timeline.series()
        for key, result in path_results.items():
            series = result.timeline.series()
            assert set(series) == set(reference)
            for name, values in series.items():
                np.testing.assert_array_equal(
                    values, reference[name], err_msg=f"{key}:{name}"
                )

    def test_fault_and_reactive_windows_present(self, path_results):
        series = path_results["event"].timeline.series()
        assert int(series["fault_state"].max()) >= 1
        assert int(series["reactive_rekeys"].sum()) > 0

    def test_totals_are_the_aggregates(self, path_results):
        result = path_results["columnar-fast"]
        totals = result.timeline.totals()
        metrics = result.metrics
        assert totals["requests"] == metrics.requests
        assert totals["failed"] == metrics.failed_requests
        assert totals["stale_served"] == metrics.stale_served_requests
        assert totals["retried"] == metrics.retried_requests
        assert totals["total_retries"] == metrics.total_retries
        assert totals["reactive_shifts"] == result.reactive_shifts
        assert totals["reactive_rekeys"] == result.reactive_rekeys
        # The cumulative byte counters are the very accumulators the run
        # finalises, so the GB conversion agrees to the last bit of the
        # division, not to a tolerance of simulation drift.
        assert totals["bytes_from_cache"] / 1e6 == pytest.approx(
            metrics.bytes_from_cache_gb, abs=1e-12
        )
        assert totals["hits"] / totals["requests"] == metrics.hit_ratio

    def test_integer_deltas_sum_exactly(self, path_results):
        timeline = path_results["columnar-event"].timeline
        totals = timeline.totals()
        for field in sorted(_INTEGER_FIELDS):
            deltas = timeline.delta(field)
            assert deltas.dtype == np.int64
            assert int(deltas.sum()) == totals[field], field

    def test_cumulative_ends_at_totals(self, path_results):
        timeline = path_results["columnar-fast"].timeline
        totals = timeline.totals()
        for field in CUMULATIVE_FIELDS:
            assert timeline.cumulative(field)[-1] == totals[field], field

    def test_window_grid_consistent(self, path_results):
        timeline = path_results["fast"].timeline
        starts = timeline.window_starts()
        assert len(starts) == timeline.num_windows
        assert starts[0] == timeline.start_time
        np.testing.assert_allclose(np.diff(starts), timeline.window_s)
        for name, values in timeline.series().items():
            assert len(values) == timeline.num_windows, name

    def test_as_dict_schema(self, path_results):
        payload = path_results["event"].timeline.as_dict()
        assert payload["schema"] == 1
        assert payload["num_windows"] == len(payload["window_starts"])
        for values in payload["series"].values():
            assert len(values) == payload["num_windows"]
        assert payload["totals"]["requests"] == sum(payload["series"]["requests"])

    def test_pickle_round_trip_preserves_value(self, path_results):
        timeline = path_results["columnar-fast"].timeline
        clone = pickle.loads(pickle.dumps(timeline))
        assert clone == timeline
        assert clone.as_dict() == timeline.as_dict()

    def test_accessors_require_finished(self):
        timeline = MetricsTimeline(60.0, 0.0)
        with pytest.raises(RuntimeError):
            timeline.totals()
        with pytest.raises(RuntimeError):
            timeline.series()


class TestZeroDrift:
    def test_disabled_and_absent_and_enabled_agree(self, workloads):
        absent = ProxyCacheSimulator(
            workloads["columnar"], _rich_config()
        ).run(make_policy("PB"))
        disabled = ProxyCacheSimulator(
            workloads["columnar"],
            _rich_config(observability=ObservabilityConfig(timeline=False)),
        ).run(make_policy("PB"))
        enabled = ProxyCacheSimulator(
            workloads["columnar"],
            _rich_config(observability=ObservabilityConfig(window_s=WINDOW_S)),
        ).run(make_policy("PB"))
        assert absent.metrics.as_dict() == disabled.metrics.as_dict()
        assert absent.metrics.as_dict() == enabled.metrics.as_dict()
        assert absent.timeline is None and disabled.timeline is None
        assert absent.profile is None and disabled.profile is None
        assert enabled.timeline is not None

    def test_heap_statistics_promoted_regardless(self, workloads):
        result = ProxyCacheSimulator(
            workloads["columnar"], _rich_config()
        ).run(make_policy("PB"))
        stats = result.heap_statistics
        assert stats is not None
        for key in ("size", "live_entries", "peak_size", "compactions"):
            assert key in stats


# ----------------------------------------------------------------------
# Trace sink and observed store
# ----------------------------------------------------------------------
class TestTraceSink:
    def test_level_filter_drops_debug(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceSink(path, level="info") as sink:
            sink.emit("info", "run-start", 0.0)
            sink.emit("debug", "cache-admission", 1.0, object=1)
            sink.emit("info", "run-end", 2.0)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == [
            "run-start", "run-end",
        ]
        assert sink.emitted == 2 and sink.dropped == 1

    def test_sampling_is_deterministic_stride(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceSink(path, level="debug", sample=0.5) as sink:
            sink.emit("info", "run-start", 0.0)
            for index in range(100):
                sink.emit("debug", "cache-admission", float(index), n=index)
            sink.emit("info", "run-end", 100.0)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        # Run boundaries are exempt from sampling; the stride keeps half.
        assert records[0]["event"] == "run-start"
        assert records[-1]["event"] == "run-end"
        sampled = [r for r in records if r["event"] == "cache-admission"]
        assert len(sampled) == 50
        # Deterministic: the same emit sequence keeps the same events.
        assert [r["n"] for r in sampled] == list(range(1, 100, 2))

    def test_invalid_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TraceSink(tmp_path / "t.jsonl", level="verbose")
        with pytest.raises(ValueError):
            TraceSink(tmp_path / "t.jsonl", sample=0.0)

    def test_observed_store_emits_transitions(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceSink(path, level="debug") as sink:
            store = ObservedCacheStore(100.0, sink)
            store.touch(7, 5.0)
            store.set_cached_bytes(7, 50.0)           # admission
            store.set_cached_bytes(7, 80.0)           # grow
            store.set_cached_bytes(7, 20.0)           # trim
            store.set_cached_bytes(7, 0.0, now=9.0)   # eviction
            store.set_cached_bytes(7, 0.0)            # no-op: no event
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == [
            "cache-admission", "cache-grow", "cache-trim", "cache-eviction",
        ]
        # Clock-less changes are stamped with the last request time seen;
        # explicit timestamps win.
        assert records[0]["t"] == 5.0
        assert records[-1]["t"] == 9.0
        assert store.evictions == 1

    def test_simulator_trace_file_end_to_end(self, workloads, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        config = _rich_config(
            observability=ObservabilityConfig(
                timeline=False, trace_path=str(trace_path), trace_level="debug"
            )
        )
        observed = ProxyCacheSimulator(workloads["columnar"], config).run(
            make_policy("PB")
        )
        baseline = ProxyCacheSimulator(
            workloads["columnar"], _rich_config()
        ).run(make_policy("PB"))
        # Tracing must not perturb the run either.
        assert observed.metrics.as_dict() == baseline.metrics.as_dict()
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert records[0]["event"] == "run-start"
        assert records[-1]["event"] == "run-end"
        events = {record["event"] for record in records}
        assert "cache-admission" in events
        assert "fault-episode-start" in events
        assert "rekey" in events


# ----------------------------------------------------------------------
# Stage profiler
# ----------------------------------------------------------------------
class TestStageProfiler:
    def test_block_and_wrap_accounting(self):
        profiler = StageProfiler()
        with profiler.stage("block"):
            pass
        wrapped = profiler.wrap("calls", lambda x: x + 1)
        assert wrapped(1) == 2 and wrapped(2) == 3
        report = profiler.report()
        assert report["block"]["calls"] == 1
        assert report["calls"]["calls"] == 2
        assert report["calls"]["seconds"] >= 0.0

    def test_attach_detach_leaves_no_trace(self):
        class Component:
            def work(self):
                return 42

        component = Component()
        profiler = StageProfiler()
        assert profiler.attach(component, "work", "work_stage") is True
        assert component.work() == 42
        assert "work" in vars(component)  # instance-attr shadow installed
        profiler.detach_all()
        assert "work" not in vars(component)
        assert component.work() == 42
        assert profiler.report()["work_stage"]["calls"] == 1

    def test_attach_refuses_slotted_objects(self):
        class Slotted:
            __slots__ = ("x",)

            def work(self):
                return 1

        profiler = StageProfiler()
        assert profiler.attach(Slotted(), "work", "stage") is False
        assert "stage" not in profiler.report()

    def test_simulator_profile_stages(self, workloads):
        config = _rich_config(
            observability=ObservabilityConfig(timeline=False, profile=True)
        )
        result = ProxyCacheSimulator(workloads["columnar"], config).run(
            make_policy("PB")
        )
        assert result.profile is not None
        assert "replay" in result.profile
        assert "policy_ops" in result.profile
        assert "fault_evaluation" in result.profile
        assert result.profile["policy_ops"]["calls"] > 0


# ----------------------------------------------------------------------
# Configuration and logging
# ----------------------------------------------------------------------
class TestObservabilityConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(window_s=0.0)
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(trace_level="verbose")
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(trace_sample=1.5)

    def test_any_enabled(self):
        assert ObservabilityConfig().any_enabled
        assert not ObservabilityConfig(timeline=False).any_enabled
        assert ObservabilityConfig(timeline=False, profile=True).any_enabled
        assert ObservabilityConfig(
            timeline=False, trace_path="x.jsonl"
        ).any_enabled

    def test_with_observability_helper(self):
        config = SimulationConfig(cache_size_gb=1.0)
        assert config.observability is None
        attached = config.with_observability(ObservabilityConfig())
        assert attached.observability is not None
        assert config.observability is None  # original untouched


class TestLogging:
    def test_prefixes_and_levels(self):
        stream = io.StringIO()
        configure(stream=stream)
        logger = get_logger("testmod")
        logger.debug("hidden at default verbosity")
        logger.info("something ordinary")
        logger.warning("something odd")
        logger.error("something broken")
        output = stream.getvalue()
        assert "note: something ordinary" in output
        assert "warning: something odd" in output
        assert "error: something broken" in output
        assert "hidden" not in output

    def test_verbose_enables_debug(self):
        stream = io.StringIO()
        configure(verbosity=1, stream=stream)
        get_logger("testmod").debug("now visible")
        assert "debug: now visible" in stream.getvalue()

    def test_quiet_keeps_errors_only(self):
        stream = io.StringIO()
        configure(quiet=True, stream=stream)
        logger = get_logger("testmod")
        logger.warning("suppressed")
        logger.error("kept")
        output = stream.getvalue()
        assert "suppressed" not in output and "error: kept" in output

    def test_reconfigure_does_not_stack_handlers(self):
        stream = io.StringIO()
        configure(stream=stream)
        configure(stream=stream)
        get_logger("testmod").info("once")
        assert stream.getvalue().count("once") == 1


# ----------------------------------------------------------------------
# Store eviction counter
# ----------------------------------------------------------------------
class TestStoreEvictions:
    def test_counts_complete_removals_only(self):
        store = CacheStore(100.0)
        store.set_cached_bytes(1, 10.0)
        store.set_cached_bytes(2, 10.0)
        store.set_cached_bytes(1, 5.0)       # trim, not an eviction
        assert store.evictions == 0
        store.set_cached_bytes(1, 0.0)
        assert store.evictions == 1
        store.set_cached_bytes(1, 0.0)       # already gone: no double count
        assert store.evictions == 1
        store.set_cached_bytes(2, 0.0)
        assert store.evictions == 2


# ----------------------------------------------------------------------
# CLI end-to-end + artifact schema gate
# ----------------------------------------------------------------------
def _load_check_obs():
    spec = importlib.util.spec_from_file_location(
        "check_obs", REPO_ROOT / "scripts" / "check_obs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCLI:
    def test_run_writes_schema_clean_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        exit_code = main([
            "run", "--policy", "PB", "--scale", "0.02", "--seed", "1",
            "--cache-gb", "0.05", "--knowledge", "passive",
            "--reactive-threshold", "0.15", "--reactive-passive",
            "--fault-origin-outages", "2", "--fault-seed", "1",
            "--metrics-out", str(metrics_path), "--metrics-window", "1800",
            "--trace-out", str(trace_path), "--trace-level", "debug",
            "--profile",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "metrics timeline:" in captured.out
        assert "profile (wall-clock):" in captured.out
        assert "window_start" in captured.out  # the rendered table
        check_obs = _load_check_obs()
        assert check_obs.check_metrics(metrics_path) == []
        assert check_obs.check_trace(trace_path) == []

    def test_default_output_unchanged_without_flags(self, capsys):
        from repro.cli import main

        exit_code = main([
            "run", "--policy", "PB", "--scale", "0.01", "--seed", "1",
            "--cache-gb", "0.2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "policy: PB" in captured.out
        assert "metrics timeline:" not in captured.out
        assert "profile" not in captured.out
        assert "event trace" not in captured.out

    def test_verbose_flag_surfaces_heap_debug_line(self, capsys):
        from repro.cli import main

        exit_code = main([
            "-v", "run", "--policy", "PB", "--scale", "0.01", "--seed", "1",
            "--cache-gb", "0.2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "debug: policy heap:" in captured.err
