"""Trace-driven simulation of the caching-accelerator architecture.

* :mod:`repro.sim.engine` — a small discrete-event simulation engine,
* :mod:`repro.sim.events` — typed periodic auxiliary events (periodic
  bandwidth re-measurement) merged into the request stream,
* :mod:`repro.sim.config` — simulation configuration,
* :mod:`repro.sim.faults` — fault injection (origin outages, link flaps)
  and the fetch timeout / retry / serve-stale degradation model,
* :mod:`repro.sim.hierarchy` — multi-tier cache hierarchies (edge pops,
  parents, optional ICP-style sibling lookup) composed with the
  bottleneck bandwidth model,
* :mod:`repro.sim.kernel` — the shared per-request service kernel every
  replay driver delegates to (the canonical stage sequence, assembled
  once per run into a :class:`~repro.sim.kernel.KernelContext`),
* :mod:`repro.sim.metrics` — the paper's performance metrics (Section 3.3),
* :mod:`repro.sim.simulator` — the proxy-cache simulator proper, with its
  four bit-identical replay drivers (event calendar / fast / columnar
  fast / columnar event; see ``docs/architecture.md``),
* :mod:`repro.sim.runner` — multi-run averaging and parameter sweeps,
* :mod:`repro.sim.sharing` — the stream-sharing analyzer,
* :mod:`repro.sim.streaming` — segment-aware streaming sessions with
  partial-object (prefix) caching and per-session QoE accounting.
"""

from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.engine import Event, EventQueue, SimulationEngine
from repro.sim.events import (
    AuxiliarySchedule,
    BandwidthRemeasurement,
    PeriodicEvent,
    ReactiveRekeyer,
    RemeasurementConfig,
    build_remeasurement_events,
)
from repro.sim.faults import (
    FAULT_KINDS,
    FaultConfig,
    FaultEpisode,
    FaultInjector,
    FaultReport,
    FaultSchedule,
)
from repro.sim.hierarchy import CacheTier, HierarchyConfig, HierarchyReport
from repro.sim.kernel import (
    KERNEL_STAGES,
    KernelContext,
    build_context,
    serve_batch,
    serve_request,
)
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.runner import PolicyComparison, SweepResult, compare_policies, run_replications, sweep_cache_sizes
from repro.sim.sharing import SharingReport, StreamSharingAnalyzer, prefix_function_for_bandwidth
from repro.sim.simulator import REPLAY_PATHS, ProxyCacheSimulator, SimulationResult
from repro.sim.streaming import (
    StreamingConfig,
    StreamingDeliveryEngine,
    StreamingReport,
    select_stream_ids,
)

__all__ = [
    "AuxiliarySchedule",
    "BandwidthKnowledge",
    "BandwidthRemeasurement",
    "CacheTier",
    "ClientCloudConfig",
    "Event",
    "EventQueue",
    "FAULT_KINDS",
    "FaultConfig",
    "FaultEpisode",
    "FaultInjector",
    "FaultReport",
    "FaultSchedule",
    "HierarchyConfig",
    "HierarchyReport",
    "KERNEL_STAGES",
    "KernelContext",
    "MetricsCollector",
    "PeriodicEvent",
    "PolicyComparison",
    "ProxyCacheSimulator",
    "REPLAY_PATHS",
    "ReactiveRekeyer",
    "RemeasurementConfig",
    "SharingReport",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationMetrics",
    "SimulationResult",
    "StreamSharingAnalyzer",
    "StreamingConfig",
    "StreamingDeliveryEngine",
    "StreamingReport",
    "SweepResult",
    "build_context",
    "build_remeasurement_events",
    "select_stream_ids",
    "serve_batch",
    "serve_request",
    "compare_policies",
    "prefix_function_for_bandwidth",
    "run_replications",
    "sweep_cache_sizes",
]
