"""The trace-driven proxy-cache simulator.

The simulator replays a request trace against one proxy cache managed by a
policy, following the paper's methodology (Sections 3 and 4.1):

* each origin server is assigned a base path bandwidth drawn from the
  configured distribution (NLANR-derived by default),
* each request experiences the base bandwidth modulated by the configured
  variability model,
* the first ``warmup_fraction`` of the trace only warms the cache; metrics
  are collected over the remainder,
* for every request the simulator computes the joint cache + server delivery
  outcome *before* letting the policy react, so metrics reflect the cache
  state a real client would have found.

The simulator has two replay paths that produce bit-identical metrics:

* the **event-calendar path** dispatches every request through the
  discrete-event engine, so extensions that need additional event types
  (periodic re-measurement, delayed completion) compose naturally with the
  request stream, and
* the **fast path**, used automatically when no auxiliary events are
  scheduled, iterates the trace in a tight loop — no per-request ``Event``
  allocation, no heap churn, per-request bandwidth-variability draws
  pre-batched through numpy — which is several times faster on long traces.
  When the workload carries a :class:`~repro.trace.columnar.ColumnarTrace`,
  the fast path iterates the trace's numpy columns directly, skipping
  ``Request`` objects entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.store import CacheStore
from repro.exceptions import SimulationError
from repro.network.measurement import PassiveEstimator
from repro.network.topology import DeliveryTopology
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.streaming.session import DeliverySession
from repro.trace.columnar import ColumnarTrace
from repro.workload.gismo import Workload


@dataclass
class SimulationResult:
    """Everything a single simulation run produces."""

    metrics: SimulationMetrics
    policy_name: str
    config: SimulationConfig
    final_cache_occupancy: float
    final_cached_objects: int
    warmup_requests: int
    used_fast_path: bool = False

    def as_dict(self) -> Dict[str, float]:
        """Flatten result and headline metrics into one dictionary."""
        data = self.metrics.as_dict()
        data.update(
            {
                "final_cache_occupancy": self.final_cache_occupancy,
                "final_cached_objects": float(self.final_cached_objects),
                "warmup_requests": float(self.warmup_requests),
            }
        )
        return data


def _dense_id_bound(trace: ColumnarTrace) -> Optional[int]:
    """Largest object id when the trace's ids are dense and non-negative.

    Dense means the ids fit a modest lookup table (bounded by a small
    multiple of the trace length) — true for generated and ingested
    catalogs, whose ids are 0..N-1.  Returns ``None`` otherwise, sending
    the replay down the generic loop.
    """
    ids = trace.object_ids_array
    if ids.size == 0:
        return 0
    min_id = int(ids.min())
    max_id = int(ids.max())
    if min_id >= 0 and max_id < 4 * ids.size + 1024:
        return max_id
    return None


class ProxyCacheSimulator:
    """Replay a workload against one policy-managed proxy cache."""

    def __init__(self, workload: Workload, config: Optional[SimulationConfig] = None):
        self.workload = workload
        self.config = config or SimulationConfig()

    def build_topology(self, rng: np.random.Generator) -> DeliveryTopology:
        """Draw per-server base bandwidths and assemble the topology."""
        topology = DeliveryTopology.build(
            catalog=self.workload.catalog,
            cache_capacity_kb=self.config.cache_size_kb,
            bandwidth_distribution=self.config.bandwidth_distribution,
            variability=self.config.variability,
            rng=rng,
        )
        floor = self.config.min_path_bandwidth
        if floor > 0:
            for path in topology.paths:
                if path.base_bandwidth < floor:
                    path.base_bandwidth = floor
        return topology

    def schedule_auxiliary_events(
        self,
        engine: SimulationEngine,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
    ) -> None:
        """Extension hook: schedule non-request events before replay starts.

        Subclasses override this to add periodic bandwidth re-measurement,
        prefetch completions, consistency timers, etc.  Scheduling anything
        here makes :meth:`run` take the event-calendar path so the auxiliary
        events interleave correctly with the request stream; the default
        (no auxiliary events) lets the replay use the fast path.
        """

    def run(
        self,
        policy,
        topology: Optional[DeliveryTopology] = None,
        use_fast_path: Optional[bool] = None,
    ) -> SimulationResult:
        """Run the simulation for one policy.

        Parameters
        ----------
        policy:
            Any object with the :class:`~repro.core.policies.base.CachePolicy`
            interface (``name``, ``on_request``) — including
            :class:`~repro.core.policies.optimal.StaticAllocationPolicy`.
        topology:
            Optionally reuse a pre-built topology so several policies can be
            compared on *identical* bandwidth assignments; when omitted a new
            topology is drawn from the config's seed.
        use_fast_path:
            ``None`` (default) picks automatically: the fast path whenever no
            auxiliary events are scheduled.  ``False`` forces the
            event-calendar path; ``True`` forces the fast path and raises
            :class:`~repro.exceptions.SimulationError` if auxiliary events
            would be dropped.  Both paths produce bit-identical metrics.
        """
        rng = np.random.default_rng(self.config.seed)
        if topology is None:
            topology = self.build_topology(rng)

        store = CacheStore(self.config.cache_size_kb)
        if hasattr(policy, "install"):
            policy.install(store, self.workload.catalog)

        collector = MetricsCollector()
        estimator: Optional[PassiveEstimator] = None
        if self.config.bandwidth_knowledge is BandwidthKnowledge.PASSIVE:
            estimator = PassiveEstimator(smoothing=self.config.passive_smoothing)

        trace = self.workload.trace
        total_requests = len(trace)
        warmup_cutoff = int(self.config.warmup_fraction * total_requests)
        if warmup_cutoff == 0:
            collector.measuring = True

        engine = SimulationEngine()
        self.schedule_auxiliary_events(engine, topology, store, collector)
        have_auxiliary = len(engine.queue) > 0
        if use_fast_path is None:
            fast = not have_auxiliary
        elif use_fast_path and have_auxiliary:
            raise SimulationError(
                "use_fast_path=True but auxiliary events are scheduled; "
                "the fast path would not dispatch them"
            )
        else:
            fast = use_fast_path

        if fast:
            self._replay_fast(
                policy, topology, store, collector, estimator, rng, warmup_cutoff
            )
        else:
            self._replay_events(
                engine, policy, topology, store, collector, estimator, rng, warmup_cutoff
            )

        return SimulationResult(
            metrics=collector.finalize(),
            policy_name=getattr(policy, "name", type(policy).__name__),
            config=self.config,
            final_cache_occupancy=store.occupancy,
            final_cached_objects=len(store),
            warmup_requests=collector.warmup_requests,
            used_fast_path=fast,
        )

    # ------------------------------------------------------------------
    # The event-calendar replay path.
    # ------------------------------------------------------------------
    def _replay_events(
        self,
        engine: SimulationEngine,
        policy,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
        estimator: Optional[PassiveEstimator],
        rng: np.random.Generator,
        warmup_cutoff: int,
    ) -> None:
        """Dispatch every request through the discrete-event engine."""
        catalog = self.workload.catalog

        def handle_request(engine: SimulationEngine, payload) -> None:
            index, request = payload
            if index == warmup_cutoff:
                collector.measuring = True
            obj = catalog.get(request.object_id)
            path = topology.path_for(obj)
            observed_bandwidth = path.observed_bandwidth(rng)
            if estimator is not None:
                believed_bandwidth = estimator.estimate(obj.server_id)
            else:
                believed_bandwidth = path.base_bandwidth

            cached_before = store.cached_bytes(obj.object_id)
            outcome = DeliverySession(obj, cached_before, observed_bandwidth).outcome()
            collector.record(outcome)

            policy.on_request(obj, believed_bandwidth, engine.now, store)
            if estimator is not None:
                estimator.observe(obj.server_id, observed_bandwidth)
            if self.config.verify_store and not store.verify_consistency():
                raise AssertionError(
                    "cache store accounting became inconsistent "
                    f"after request {index} (object {obj.object_id})"
                )

        for index, request in enumerate(self.workload.trace):
            engine.schedule(request.time, handle_request, (index, request))
        engine.run()

    # ------------------------------------------------------------------
    # The fast replay path.
    # ------------------------------------------------------------------
    def _predraw_ratios(
        self, topology: DeliveryTopology, rng: np.random.Generator, count: int
    ) -> Optional[np.ndarray]:
        """Draw all per-request variability ratios in one numpy batch.

        Only legal when every path shares one variability model whose batched
        draws consume the generator exactly like per-request draws
        (``iid_batch_equivalent``); returns ``None`` otherwise, in which case
        the fast path falls back to per-request sampling.
        """
        model = None
        for path in topology.paths:
            if model is None:
                model = path.variability
            elif path.variability is not model:
                return None
        if model is None or not getattr(model, "iid_batch_equivalent", False):
            return None
        if count == 0:
            return np.empty(0)
        return np.asarray(model.sample_ratio(rng, size=count), dtype=np.float64)

    def _replay_fast(
        self,
        policy,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
        estimator: Optional[PassiveEstimator],
        rng: np.random.Generator,
        warmup_cutoff: int,
    ) -> None:
        """Iterate the trace in a tight loop, bypassing the event calendar.

        Replicates the per-request arithmetic of
        :class:`~repro.streaming.session.DeliverySession` and
        :meth:`~repro.sim.metrics.MetricsCollector.record` operation-for-
        operation (same floating-point order), so the resulting metrics are
        bit-identical to the event path's.  Warm-up requests skip the
        delivery-outcome arithmetic entirely — their outcomes are never
        recorded — and all metric sums accumulate in locals, merged into the
        collector once at the end.
        """
        catalog = self.workload.catalog
        trace = self.workload.trace

        # Dense columnar traces take the dedicated array-native loop.
        is_columnar = isinstance(trace, ColumnarTrace)
        if is_columnar:
            max_id = _dense_id_bound(trace)
            if max_id is not None:
                return self._replay_fast_columnar(
                    policy,
                    topology,
                    store,
                    collector,
                    estimator,
                    rng,
                    warmup_cutoff,
                    max_id,
                )

        ratio_array = self._predraw_ratios(topology, rng, len(trace))

        # Localise everything touched per request.
        catalog_get = catalog.get
        path_for = topology.path_for
        store_cached = store.cached_bytes
        policy_on_request = policy.on_request
        estimator_estimate = estimator.estimate if estimator is not None else None
        estimator_observe = estimator.observe if estimator is not None else None
        verify_store = self.config.verify_store
        verify_consistency = store.verify_consistency
        inf = float("inf")

        # Per-object resolution cache: (obj, base_bw, size, duration,
        # bitrate, quantum, value, server_id).  ``base_bw`` is immutable for
        # the duration of a run (the floor from build_topology is applied
        # before replay starts), so caching it is safe.
        resolved: Dict[int, tuple] = {}
        ratios = ratio_array.tolist() if ratio_array is not None else None

        measuring = collector.measuring
        m_requests = 0
        m_bytes_cache = 0.0
        m_bytes_server = 0.0
        m_delay = 0.0
        m_quality = 0.0
        m_value = 0.0
        m_hits = 0
        m_immediate = 0
        m_delayed = 0
        m_delay_delayed = 0.0
        warmup_count = 0
        hits_by_object: Dict[int, int] = {}

        # Pre-extract the two request fields the loop needs.  A non-dense
        # columnar trace hands its arrays over directly (one batch
        # ``tolist`` per column, native scalars, no Request boxing); an
        # object trace pays one attribute-access pass, which on 10^5-10^6
        # Request objects adds up.
        if is_columnar:
            # Lazy zip on purpose: consuming it in the loop is cheaper than
            # materializing 10^5-10^6 fresh tuples up front.
            request_fields = zip(
                trace.object_ids_array.tolist(), trace.times_array.tolist()
            )
        else:
            request_fields = [(request.object_id, request.time) for request in trace]

        for index, (object_id, req_time) in enumerate(request_fields):
            if index == warmup_cutoff:
                measuring = True
            entry = resolved.get(object_id)
            if entry is None:
                obj = catalog_get(object_id)
                path = path_for(obj)
                entry = (
                    obj,
                    path.base_bandwidth,
                    obj.duration * obj.bitrate,
                    obj.duration,
                    obj.bitrate,
                    1.0 / obj.layers,
                    obj.value,
                    obj.server_id,
                    path,
                )
                resolved[object_id] = entry
            obj, base_bw, size, duration, bitrate, quantum, value, server_id, path = entry

            if ratios is not None:
                observed = base_bw * ratios[index]
                if observed < 1.0:
                    observed = 1.0
            else:
                observed = path.observed_bandwidth(rng)

            if estimator_estimate is not None:
                believed = estimator_estimate(server_id)
            else:
                believed = base_bw

            cached = store_cached(object_id)

            if measuring:
                # DeliverySession.outcome(), inlined with identical
                # floating-point operation order.
                if cached > size:
                    cached = size
                missing = size - duration * observed - cached
                if missing <= 0:
                    delay = 0.0
                elif observed <= 0:
                    delay = inf
                else:
                    delay = missing / observed
                supported_rate = cached / duration + (
                    observed if observed > 0.0 else 0.0
                )
                fraction = supported_rate / bitrate
                if fraction >= 1.0:
                    quality = 1.0
                else:
                    quality = int(fraction / quantum + 1e-9) * quantum

                # MetricsCollector.record(), inlined in the same order.
                m_requests += 1
                m_bytes_cache += cached
                m_bytes_server += size - cached
                m_delay += delay
                m_quality += quality
                if delay <= 0.0:
                    m_value += value
                    m_immediate += 1
                else:
                    m_delayed += 1
                    m_delay_delayed += delay
                if cached > 0:
                    m_hits += 1
                    hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1
            else:
                warmup_count += 1

            policy_on_request(obj, believed, req_time, store)
            if estimator_observe is not None:
                estimator_observe(server_id, observed)
            if verify_store and not verify_consistency():
                raise AssertionError(
                    "cache store accounting became inconsistent "
                    f"after request {index} (object {object_id})"
                )

        collector.measuring = measuring
        collector.absorb(
            requests=m_requests,
            bytes_from_cache=m_bytes_cache,
            bytes_from_server=m_bytes_server,
            delay_sum=m_delay,
            quality_sum=m_quality,
            value_sum=m_value,
            hits=m_hits,
            immediate=m_immediate,
            delayed=m_delayed,
            delay_sum_delayed=m_delay_delayed,
            warmup_requests=warmup_count,
            per_object_hits=hits_by_object,
        )

    # ------------------------------------------------------------------
    # The columnar fast replay path.
    # ------------------------------------------------------------------
    def _replay_fast_columnar(
        self,
        policy,
        topology: DeliveryTopology,
        store: CacheStore,
        collector: MetricsCollector,
        estimator: Optional[PassiveEstimator],
        rng: np.random.Generator,
        warmup_cutoff: int,
        max_id: int,
    ) -> None:
        """Array-native replay for dense-id :class:`ColumnarTrace` workloads.

        Performs the **same arithmetic in the same order** as
        :meth:`_replay_fast` (and therefore as the event path) — the metric
        results are bit-identical — but exploits what the columnar
        representation makes possible:

        * no ``Request`` boxing anywhere: the loop consumes the trace's
          numpy columns through one batch ``tolist`` per column,
        * every distinct object is resolved once up front and looked up by
          list index (dense ids) instead of per-request dict probes,
        * with a batch-equivalent variability model the per-request
          observed bandwidth ``max(base * ratio, 1)`` is computed as one
          vectorised numpy expression (elementwise IEEE-identical to the
          scalar form),
        * the replay is split at the warm-up cutoff into two loops, so the
          per-request warm-up/measuring branches disappear and warm-up
          requests skip the cache-occupancy read whose value they never
          use (a pure read; the store is untouched by it).
        """
        catalog = self.workload.catalog
        trace: ColumnarTrace = self.workload.trace
        total = len(trace)
        ratio_array = self._predraw_ratios(topology, rng, total)

        # Localise everything touched per request.
        catalog_get = catalog.get
        path_for = topology.path_for
        store_cached = store.cached_bytes
        policy_on_request = policy.on_request
        estimator_estimate = estimator.estimate if estimator is not None else None
        estimator_observe = estimator.observe if estimator is not None else None
        verify_store = self.config.verify_store
        verify_consistency = store.verify_consistency
        inf = float("inf")

        ids_array = trace.object_ids_array
        ids_list = ids_array.tolist()
        times_list = trace.times_array.tolist()

        # Resolve every distinct object once; ``entries`` is indexed by
        # object id (dense, checked by the caller via _dense_id_bound).
        entries: List[Optional[tuple]] = [None] * (max_id + 1)
        for object_id in (np.unique(ids_array).tolist() if total else []):
            obj = catalog_get(object_id)
            path = path_for(obj)
            entries[object_id] = (
                obj,
                path.base_bandwidth,
                obj.duration * obj.bitrate,
                obj.duration,
                obj.bitrate,
                1.0 / obj.layers,
                obj.value,
                obj.server_id,
                path,
            )

        # Vectorised observed bandwidth when the variability model allows
        # batched draws: max(base * ratio, 1.0) elementwise.
        observed_seq: Optional[List[float]] = None
        if ratio_array is not None and total:
            base_lut = np.zeros(max_id + 1, dtype=np.float64)
            for object_id, entry in enumerate(entries):
                if entry is not None:
                    base_lut[object_id] = entry[1]
            observed_array = base_lut[ids_array] * ratio_array
            np.maximum(observed_array, 1.0, out=observed_array)
            observed_seq = observed_array.tolist()

        measuring = collector.measuring
        warmup_end = 0 if measuring else min(warmup_cutoff, total)

        # ---- Warm-up phase: feed the policy (and estimator), record
        # nothing.  The delivery-outcome arithmetic and the cache-occupancy
        # read are skipped entirely; neither has side effects.
        for index, object_id in enumerate(ids_list[:warmup_end]):
            entry = entries[object_id]
            obj, base_bw, _, _, _, _, _, server_id, path = entry
            if observed_seq is not None:
                observed = observed_seq[index]
            else:
                observed = path.observed_bandwidth(rng)
            if estimator_estimate is not None:
                believed = estimator_estimate(server_id)
            else:
                believed = base_bw
            policy_on_request(obj, believed, times_list[index], store)
            if estimator_observe is not None:
                estimator_observe(server_id, observed)
            if verify_store and not verify_consistency():
                raise AssertionError(
                    "cache store accounting became inconsistent "
                    f"after request {index} (object {object_id})"
                )

        m_requests = 0
        m_bytes_cache = 0.0
        m_bytes_server = 0.0
        m_delay = 0.0
        m_quality = 0.0
        m_value = 0.0
        m_hits = 0
        m_immediate = 0
        m_delayed = 0
        m_delay_delayed = 0.0
        hits_by_object: Dict[int, int] = {}

        # ---- Measurement phase: identical per-request arithmetic to
        # _replay_fast's measuring branch, with the phase-local sequences
        # sliced so no per-request index arithmetic is needed.
        times_measure = times_list[warmup_end:]
        observed_measure = (
            observed_seq[warmup_end:] if observed_seq is not None else None
        )
        for offset, object_id in enumerate(ids_list[warmup_end:]):
            entry = entries[object_id]
            obj, base_bw, size, duration, bitrate, quantum, value, server_id, path = entry

            if observed_measure is not None:
                observed = observed_measure[offset]
            else:
                observed = path.observed_bandwidth(rng)

            if estimator_estimate is not None:
                believed = estimator_estimate(server_id)
            else:
                believed = base_bw

            cached = store_cached(object_id)

            # DeliverySession.outcome(), inlined with identical
            # floating-point operation order.
            if cached > size:
                cached = size
            missing = size - duration * observed - cached
            if missing <= 0:
                delay = 0.0
            elif observed <= 0:
                delay = inf
            else:
                delay = missing / observed
            supported_rate = cached / duration + (
                observed if observed > 0.0 else 0.0
            )
            fraction = supported_rate / bitrate
            if fraction >= 1.0:
                quality = 1.0
            else:
                quality = int(fraction / quantum + 1e-9) * quantum

            # MetricsCollector.record(), inlined in the same order.
            m_requests += 1
            m_bytes_cache += cached
            m_bytes_server += size - cached
            m_delay += delay
            m_quality += quality
            if delay <= 0.0:
                m_value += value
                m_immediate += 1
            else:
                m_delayed += 1
                m_delay_delayed += delay
            if cached > 0:
                m_hits += 1
                hits_by_object[object_id] = hits_by_object.get(object_id, 0) + 1

            policy_on_request(obj, believed, times_measure[offset], store)
            if estimator_observe is not None:
                estimator_observe(server_id, observed)
            if verify_store and not verify_consistency():
                raise AssertionError(
                    "cache store accounting became inconsistent "
                    f"after request {warmup_end + offset} (object {object_id})"
                )

        collector.measuring = measuring or total > warmup_end
        collector.absorb(
            requests=m_requests,
            bytes_from_cache=m_bytes_cache,
            bytes_from_server=m_bytes_server,
            delay_sum=m_delay,
            quality_sum=m_quality,
            value_sum=m_value,
            hits=m_hits,
            immediate=m_immediate,
            delayed=m_delayed,
            delay_sum_delayed=m_delay_delayed,
            warmup_requests=warmup_end,
            per_object_hits=hits_by_object,
        )
