"""Table 1 — Characteristics of the synthetic workload.

Regenerates the GISMO workload at a reduced scale and checks that every
characteristic listed in Table 1 (object count, request count, Zipf
popularity, lognormal durations, 48 KB/s bit-rate, ~790 GB total unique
size when extrapolated to full scale) is reproduced.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import experiment_table1_workload

#: Scale used for the benchmark; totals are extrapolated back to full scale.
SCALE = 0.1


def test_table1_workload_characteristics(benchmark):
    result = run_once(benchmark, experiment_table1_workload, scale=SCALE, seed=0)
    summary = result.data["summary"]
    extrapolated_total_gb = summary["total_size_gb"] / SCALE
    report(
        benchmark,
        result,
        extra={
            "objects": summary["objects"],
            "requests": summary["requests"],
            "extrapolated_total_gb": extrapolated_total_gb,
            "mean_duration_minutes": summary["mean_duration_s"] / 60.0,
        },
    )
    assert summary["objects"] == 5_000 * SCALE
    assert summary["requests"] == 100_000 * SCALE
    assert summary["zipf_alpha"] == pytest.approx(0.73)
    assert summary["mean_bitrate_kbps"] == pytest.approx(48.0)
    # Mean duration about 55 minutes, total unique size about 790 GB.
    assert summary["mean_duration_s"] / 60.0 == pytest.approx(55.0, rel=0.15)
    assert extrapolated_total_gb == pytest.approx(790.0, rel=0.15)
