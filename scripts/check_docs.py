#!/usr/bin/env python
"""Documentation checks: markdown link integrity and executable snippets.

Two checks, both run by ``make docs-check`` and the CI docs job (and, in
library form, by ``tests/test_docs.py``):

* **Link check** — every inline markdown link ``[text](target)`` in
  ``README.md`` and ``docs/*.md`` that points at a local path must resolve
  to an existing file or directory (anchors are stripped; ``http(s)``/
  ``mailto`` targets are skipped — CI must not flake on the network).
* **Snippet check** — the first ``python`` code block of every page listed
  in :data:`EXECUTABLE_SNIPPETS` (the README quickstart, the
  ``docs/clients.md`` worked example, the ``docs/events.md``
  re-measurement + reactive example, the ``docs/faults.md`` fault
  injection example, the ``docs/hierarchy.md`` two-tier example, the
  ``docs/observability.md`` timeline example, and the
  ``docs/streaming.md`` prefix-vs-whole ablation example)
  must run as-is (with ``src/`` on ``PYTHONPATH``), so the code a reader
  copies cannot be stale.

Exit status is non-zero when any check fails; failures are listed one per
line as ``file:line: message``.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links/images: [text](target) — target captured lazily so
#: titles ("...") and nested parens in URLs do not confuse the check.
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")

#: Targets that are not local paths.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: Pages whose first ```python block must execute cleanly, repo-relative.
EXECUTABLE_SNIPPETS = (
    "README.md",
    "docs/clients.md",
    "docs/events.md",
    "docs/faults.md",
    "docs/hierarchy.md",
    "docs/observability.md",
    "docs/streaming.md",
)


def iter_markdown_files(root: Path = REPO_ROOT) -> List[Path]:
    """The markdown set covered by the docs gate: README.md + docs/*.md."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def check_links(files: Optional[List[Path]] = None) -> List[str]:
    """Return ``file:line: message`` entries for every broken local link."""
    problems: List[str] = []
    for path in files if files is not None else iter_markdown_files():
        in_fence = False
        for line_number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK_PATTERN.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                    continue
                local = target.split("#", 1)[0]
                if not local:
                    continue
                resolved = (path.parent / local).resolve()
                if not resolved.exists():
                    try:
                        shown = path.relative_to(REPO_ROOT)
                    except ValueError:
                        shown = path
                    problems.append(
                        f"{shown}:{line_number}: broken link -> {target}"
                    )
    return problems


def extract_python_block(page: Path) -> Optional[str]:
    """The first ``python`` fenced code block of a markdown page, or ``None``."""
    if not page.exists():
        return None
    match = re.search(r"```python\n(.*?)```", page.read_text(), flags=re.S)
    return match.group(1) if match else None


def extract_quickstart(readme: Optional[Path] = None) -> Optional[str]:
    """The first ``python`` fenced code block of the README, or ``None``."""
    return extract_python_block(readme or REPO_ROOT / "README.md")


def run_snippet(snippet: str) -> Tuple[int, str]:
    """Execute one extracted snippet; return (exit code, output)."""
    with tempfile.NamedTemporaryFile(
        "w", suffix="_snippet.py", delete=False
    ) as handle:
        handle.write(snippet)
        script = handle.name
    try:
        completed = subprocess.run(
            [sys.executable, script],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
            timeout=300,
        )
    finally:
        Path(script).unlink(missing_ok=True)
    return completed.returncode, completed.stdout + completed.stderr


def run_quickstart(snippet: Optional[str] = None) -> Tuple[int, str]:
    """Execute the README quickstart snippet; return (exit code, output)."""
    snippet = snippet if snippet is not None else extract_quickstart()
    if snippet is None:
        return 1, "README.md has no ```python quickstart block"
    return run_snippet(snippet)


def run_executable_snippets() -> List[Tuple[str, int, str]]:
    """Run every page of :data:`EXECUTABLE_SNIPPETS`.

    Returns ``(page, exit code, output)`` per page; a page without a
    ``python`` block counts as a failure — losing the block *is* the drift
    the check exists to catch.
    """
    outcomes: List[Tuple[str, int, str]] = []
    for relative in EXECUTABLE_SNIPPETS:
        snippet = extract_python_block(REPO_ROOT / relative)
        if snippet is None:
            outcomes.append((relative, 1, f"{relative} has no ```python block"))
            continue
        code, output = run_snippet(snippet)
        outcomes.append((relative, code, output))
    return outcomes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links-only",
        action="store_true",
        help="skip executing the documentation code snippets",
    )
    args = parser.parse_args(argv)

    files = iter_markdown_files()
    problems = check_links(files)
    for problem in problems:
        print(problem)
    print(f"link check: {len(files)} files, {len(problems)} broken links")
    status = 1 if problems else 0

    if not args.links_only:
        for page, code, output in run_executable_snippets():
            if code != 0:
                print(f"snippet check ({page}): FAILED")
                print(output)
                status = 1
            else:
                print(f"snippet check ({page}): ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
