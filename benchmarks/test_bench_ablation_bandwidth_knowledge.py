"""Ablation — how the cache learns bandwidth: oracle vs passive estimation.

Section 2.7 of the paper discusses active and passive bandwidth measurement
but the evaluation assumes the cache knows each path's average bandwidth.
This ablation quantifies what changes when the PB policy has to rely on a
passive EWMA estimate built from the throughput of completed transfers:
the estimate starts wrong (a fixed prior) and converges as transfers to a
server accumulate, so delay and quality degrade slightly relative to the
oracle, while the overall ordering versus IF is preserved.
"""

from benchmarks.conftest import BENCH_RUNS, BENCH_SCALE, report, run_once
from repro.analysis.experiments import build_workload, cache_sizes_gb_for
from repro.core.policies import make_policy
from repro.network.variability import MeasuredPathVariability
from repro.sim.config import BandwidthKnowledge, SimulationConfig
from repro.sim.runner import compare_policies

CACHE_FRACTION = 0.05


def run_ablation():
    workload = build_workload(scale=BENCH_SCALE, seed=0)
    cache_gb = cache_sizes_gb_for(workload, (CACHE_FRACTION,))[0]
    results = {}
    for label, knowledge in (
        ("oracle", BandwidthKnowledge.ORACLE),
        ("passive", BandwidthKnowledge.PASSIVE),
    ):
        config = SimulationConfig(
            cache_size_gb=cache_gb,
            variability=MeasuredPathVariability("average"),
            bandwidth_knowledge=knowledge,
            seed=0,
        )
        comparison = compare_policies(
            workload,
            {"PB": lambda: make_policy("PB"), "IF": lambda: make_policy("IF")},
            config,
            num_runs=BENCH_RUNS,
        )
        results[label] = comparison
    return results


def test_ablation_bandwidth_knowledge(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    oracle = results["oracle"].metrics_by_policy["PB"]
    passive = results["passive"].metrics_by_policy["PB"]

    print()
    print("== ablation: bandwidth knowledge (PB policy) ==")
    print(f"{'knowledge':10} {'delay (s)':>10} {'quality':>9} {'traffic reduction':>18}")
    for label, comparison in results.items():
        metrics = comparison.metrics_by_policy["PB"]
        print(
            f"{label:10} {metrics.average_service_delay:10.1f} "
            f"{metrics.average_stream_quality:9.3f} "
            f"{metrics.traffic_reduction_ratio:18.3f}"
        )
    benchmark.extra_info.update(
        {
            "oracle_delay": round(oracle.average_service_delay, 2),
            "passive_delay": round(passive.average_service_delay, 2),
        }
    )

    # Passive estimation costs something but not everything: delay within 2x
    # of the oracle, and still clearly better than the network-unaware IF.
    assert passive.average_service_delay <= oracle.average_service_delay * 2.0
    passive_if = results["passive"].metrics_by_policy["IF"]
    assert passive.average_service_delay <= passive_if.average_service_delay
