"""Qualitative reproduction tests: the orderings the paper's figures report.

These are the repository's "does it reproduce the paper?" tests.  They run
the simulation at reduced scale (a few hundred objects, a few thousand
requests) but with the paper's distributional parameters, and assert the
*shape* of the results — which policy wins on which metric — rather than
absolute numbers.
"""

import pytest

from repro.core.policies import make_policy
from repro.network.variability import ConstantVariability, MeasuredPathVariability
from repro.sim.config import SimulationConfig
from repro.sim.runner import compare_policies
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def workload():
    """A 1/25-scale Table 1 workload (200 objects, 4,000 requests)."""
    return GismoWorkloadGenerator(
        WorkloadConfig(num_objects=200, num_requests=4_000, num_servers=50, seed=42)
    ).generate()


def run_comparison(workload, policies, cache_fraction, variability=None, runs=3):
    config = SimulationConfig(
        cache_size_gb=cache_fraction * workload.catalog.total_size_gb,
        variability=variability or ConstantVariability(),
        seed=7,
    )
    return compare_policies(
        workload, {name: (lambda n=name: make_policy(n)) for name in policies}, config, runs
    )


@pytest.fixture(scope="module")
def figure5_comparison(workload):
    """IF / PB / IB at a mid-range cache size under constant bandwidth."""
    return run_comparison(workload, ("IF", "PB", "IB"), cache_fraction=0.05)


class TestFigure5ConstantBandwidth:
    def test_if_has_highest_traffic_reduction(self, figure5_comparison):
        trr = figure5_comparison.metric("traffic_reduction_ratio")
        assert trr["IF"] == max(trr.values())

    def test_pb_has_lowest_traffic_reduction(self, figure5_comparison):
        trr = figure5_comparison.metric("traffic_reduction_ratio")
        assert trr["PB"] == min(trr.values())

    def test_pb_has_lowest_delay(self, figure5_comparison):
        delay = figure5_comparison.metric("average_service_delay")
        assert delay["PB"] == min(delay.values())

    def test_if_has_highest_delay(self, figure5_comparison):
        delay = figure5_comparison.metric("average_service_delay")
        assert delay["IF"] == max(delay.values())

    def test_pb_has_highest_quality(self, figure5_comparison):
        quality = figure5_comparison.metric("average_stream_quality")
        assert quality["PB"] == max(quality.values())

    def test_ib_lies_between_the_extremes_on_delay(self, figure5_comparison):
        delay = figure5_comparison.metric("average_service_delay")
        assert delay["PB"] <= delay["IB"] <= delay["IF"]


class TestFigure6TemporalLocality:
    def test_stronger_zipf_skew_improves_both_policies(self):
        results = {}
        for alpha in (0.5, 1.1):
            workload = GismoWorkloadGenerator(
                WorkloadConfig(
                    num_objects=200, num_requests=4_000, num_servers=50,
                    zipf_alpha=alpha, seed=13,
                )
            ).generate()
            results[alpha] = run_comparison(workload, ("PB", "IB"), cache_fraction=0.05)
        for policy in ("PB", "IB"):
            low = results[0.5].metrics_by_policy[policy]
            high = results[1.1].metrics_by_policy[policy]
            assert high.traffic_reduction_ratio > low.traffic_reduction_ratio
            assert high.average_service_delay < low.average_service_delay


class TestFigure7And8Variability:
    def test_variability_increases_delay_for_all_policies(self, workload, figure5_comparison):
        variable = run_comparison(
            workload,
            ("IF", "PB", "IB"),
            cache_fraction=0.05,
            variability=MeasuredPathVariability("average"),
        )
        for policy in ("IF", "PB", "IB"):
            assert (
                variable.metrics_by_policy[policy].average_service_delay
                >= figure5_comparison.metrics_by_policy[policy].average_service_delay * 0.95
            )

    def test_low_variability_keeps_pb_ahead_on_delay(self, workload):
        # Figure 8: with the measured (low) variability PB still wins on delay.
        comparison = run_comparison(
            workload,
            ("IF", "PB", "IB"),
            cache_fraction=0.05,
            variability=MeasuredPathVariability("inria"),
        )
        delay = comparison.metric("average_service_delay")
        assert delay["PB"] <= delay["IF"]
        assert delay["PB"] <= delay["IB"] * 1.1

    def test_traffic_reduction_insensitive_to_variability(self, workload, figure5_comparison):
        # Figure 7(a) vs 5(a): traffic reduction barely changes.
        variable = run_comparison(
            workload,
            ("IF", "PB", "IB"),
            cache_fraction=0.05,
            variability=MeasuredPathVariability("average"),
        )
        for policy in ("IF", "PB", "IB"):
            constant_trr = figure5_comparison.metrics_by_policy[policy].traffic_reduction_ratio
            variable_trr = variable.metrics_by_policy[policy].traffic_reduction_ratio
            assert variable_trr == pytest.approx(constant_trr, abs=0.08)


class TestFigure9EstimatorSpectrum:
    def test_smaller_e_reduces_traffic_more(self, workload):
        config = SimulationConfig(
            cache_size_gb=0.05 * workload.catalog.total_size_gb,
            variability=MeasuredPathVariability("average"),
            seed=7,
        )
        comparison = compare_policies(
            workload,
            {
                "e=0.3": lambda: make_policy("PB", estimator_e=0.3),
                "e=1.0": lambda: make_policy("PB", estimator_e=1.0),
            },
            config,
            num_runs=3,
        )
        trr = comparison.metric("traffic_reduction_ratio")
        # Conservative estimation caches bigger prefixes of fewer objects,
        # which serves more bytes from the cache for the hottest objects.
        assert trr["e=0.3"] >= trr["e=1.0"]


class TestFigure10And11Value:
    def test_value_policies_beat_if_on_added_value(self, workload):
        comparison = run_comparison(workload, ("IF", "PB-V", "IB-V"), cache_fraction=0.05)
        value = comparison.metric("total_added_value")
        assert value["PB-V"] >= value["IF"]
        assert value["IB-V"] >= value["IF"]

    def test_if_beats_value_policies_on_traffic_reduction(self, workload):
        comparison = run_comparison(workload, ("IF", "PB-V", "IB-V"), cache_fraction=0.05)
        trr = comparison.metric("traffic_reduction_ratio")
        assert trr["IF"] == max(trr.values())

    def test_pbv_leads_on_value_under_constant_bandwidth(self, workload):
        comparison = run_comparison(workload, ("PB-V", "IB-V"), cache_fraction=0.02)
        value = comparison.metric("total_added_value")
        assert value["PB-V"] >= value["IB-V"] * 0.97


class TestNetworkAwareBeatsClassicBaselines:
    def test_pb_beats_lru_on_delay_and_quality(self, workload):
        comparison = run_comparison(workload, ("PB", "LRU"), cache_fraction=0.05)
        assert (
            comparison.metrics_by_policy["PB"].average_service_delay
            < comparison.metrics_by_policy["LRU"].average_service_delay
        )
        assert (
            comparison.metrics_by_policy["PB"].average_stream_quality
            > comparison.metrics_by_policy["LRU"].average_stream_quality
        )
