"""The documentation suite stays honest: links resolve, the executable
snippets run, and the public API is documented.

These mirror the CI docs job (``make docs-check``) inside tier-1 so a
broken link or a stale snippet (the README quickstart, the
``docs/clients.md`` worked example) fails locally too, and they enforce
the docstring contract on the ``repro.trace`` / ``repro.sim`` /
``repro.network`` public API — every exported symbol must be usable
through ``help()``.
"""

import importlib
import importlib.util
import inspect
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def check_docs():
    return _load_check_docs()


def test_required_documents_exist():
    for relative in (
        "README.md",
        "docs/architecture.md",
        "docs/clients.md",
        "docs/events.md",
        "docs/faults.md",
        "docs/hierarchy.md",
        "docs/observability.md",
        "docs/performance.md",
        "docs/streaming.md",
        "docs/traces.md",
    ):
        assert (REPO_ROOT / relative).exists(), f"missing {relative}"


def test_markdown_links_resolve(check_docs):
    files = check_docs.iter_markdown_files()
    assert len(files) >= 5
    problems = check_docs.check_links(files)
    assert problems == []


def test_readme_quickstart_runs_as_is(check_docs):
    snippet = check_docs.extract_quickstart()
    assert snippet is not None, "README.md lost its ```python quickstart block"
    code, output = check_docs.run_quickstart(snippet)
    assert code == 0, f"README quickstart failed:\n{output}"
    # The snippet prints one metrics line per policy it compares.
    assert "traffic_reduction" in output


def test_clients_worked_example_runs_as_is(check_docs):
    snippet = check_docs.extract_python_block(REPO_ROOT / "docs" / "clients.md")
    assert snippet is not None, "docs/clients.md lost its ```python example"
    code, output = check_docs.run_snippet(snippet)
    assert code == 0, f"docs/clients.md example failed:\n{output}"
    # One line per client-cloud setting, plus the reactive summary.
    assert "unconstrained" in output and "heterogeneous" in output
    assert "reactive:" in output


def test_events_example_runs_as_is(check_docs):
    snippet = check_docs.extract_python_block(REPO_ROOT / "docs" / "events.md")
    assert snippet is not None, "docs/events.md lost its ```python example"
    code, output = check_docs.run_snippet(snippet)
    assert code == 0, f"docs/events.md example failed:\n{output}"
    # The reactive half of the example reports its shift/re-key counters.
    assert "shifts re-keyed" in output


def test_observability_example_runs_as_is(check_docs):
    snippet = check_docs.extract_python_block(
        REPO_ROOT / "docs" / "observability.md"
    )
    assert snippet is not None, "docs/observability.md lost its ```python example"
    code, output = check_docs.run_snippet(snippet)
    assert code == 0, f"docs/observability.md example failed:\n{output}"
    # The example prints the window count and the promoted heap stats.
    assert "windows of" in output
    assert "heap:" in output


def test_hierarchy_example_runs_as_is(check_docs):
    snippet = check_docs.extract_python_block(REPO_ROOT / "docs" / "hierarchy.md")
    assert snippet is not None, "docs/hierarchy.md lost its ```python example"
    code, output = check_docs.run_snippet(snippet)
    assert code == 0, f"docs/hierarchy.md example failed:\n{output}"
    # The example compares the single cache against the two-tier chain.
    assert "single cache" in output and "2-tier" in output


def test_streaming_example_runs_as_is(check_docs):
    snippet = check_docs.extract_python_block(REPO_ROOT / "docs" / "streaming.md")
    assert snippet is not None, "docs/streaming.md lost its ```python example"
    code, output = check_docs.run_snippet(snippet)
    assert code == 0, f"docs/streaming.md example failed:\n{output}"
    # The example compares prefix caching against the whole-object ablation.
    assert "prefix" in output and "whole-object" in output


def test_executable_snippet_registry_covers_clients_page(check_docs):
    assert "docs/clients.md" in check_docs.EXECUTABLE_SNIPPETS
    assert "README.md" in check_docs.EXECUTABLE_SNIPPETS
    assert "docs/events.md" in check_docs.EXECUTABLE_SNIPPETS
    assert "docs/hierarchy.md" in check_docs.EXECUTABLE_SNIPPETS
    assert "docs/observability.md" in check_docs.EXECUTABLE_SNIPPETS
    assert "docs/streaming.md" in check_docs.EXECUTABLE_SNIPPETS


def test_link_checker_flags_broken_links(check_docs, tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "[ok](real.md)\n[missing](nowhere.md)\n[web](https://example.com)\n"
        "```\n[fenced](also_nowhere.md)\n```\n"
    )
    (tmp_path / "real.md").write_text("hi")
    problems = check_docs.check_links([page])
    assert len(problems) == 1
    assert "nowhere.md" in problems[0]


# ----------------------------------------------------------------------
# Docstring pass: repro.trace, repro.sim, repro.network, repro.obs, and
# repro.streaming are help()-complete (repro.network joined with the
# client-cloud API, repro.obs with the observability subsystem,
# repro.streaming with the segment-aware session model).
# ----------------------------------------------------------------------
DOCUMENTED_PACKAGES = (
    "repro.trace",
    "repro.sim",
    "repro.network",
    "repro.obs",
    "repro.streaming",
)


def _exported_symbols(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, f"{package_name} has no module docstring"
    for name in package.__all__:
        yield package_name, name, getattr(package, name)


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_public_api_is_documented(package_name):
    undocumented = []
    for owner, name, symbol in _exported_symbols(package_name):
        if not inspect.isclass(symbol) and not inspect.isfunction(symbol):
            continue  # constants (tuples, dicts) document themselves in the module
        if not inspect.getdoc(symbol):
            undocumented.append(f"{owner}.{name}")
            continue
        if inspect.isclass(symbol):
            for method_name, method in vars(symbol).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not inspect.getdoc(method):
                    undocumented.append(f"{owner}.{name}.{method_name}")
    assert undocumented == [], f"missing docstrings: {undocumented}"


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_submodules_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    package_dir = Path(package.__file__).parent
    for module_file in package_dir.glob("*.py"):
        module_name = (
            package_name
            if module_file.stem == "__init__"
            else f"{package_name}.{module_file.stem}"
        )
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no module docstring"
