"""The BENCH_perf.json trajectory gate (``scripts/check_bench.py``).

The gate has two jobs — fail when the benchmark record *loses* keys, and
fail when a recorded ratio regresses past the tolerance in its bad
direction — and two non-jobs: never fail on *new* keys (the record must be
able to grow) and never fail on improvements.  All four are pinned here,
plus an end-to-end check that the committed ``BENCH_perf.json`` passes its
own gate (so CI's baseline comparison starts from a green state).
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_bench  # noqa: E402  (scripts/ is not a package)

BASELINE = {
    "requests": 200_000,
    "speedup": 6.0,
    "columnar_speedup_vs_fast_path": 1.05,
    "remeasurement": {"overhead_ratio_vs_passive": 1.2, "events_fired": 20_000},
    "client_clouds": {"overhead_ratio_vs_uniform": 1.4},
}


def test_identical_files_pass():
    assert check_bench.check(BASELINE, BASELINE) == []


def test_lost_keys_fail_recursively():
    current = json.loads(json.dumps(BASELINE))
    del current["speedup"]
    del current["remeasurement"]["events_fired"]
    problems = check_bench.check(BASELINE, current)
    assert "lost key: speedup" in problems
    assert "lost key: remeasurement.events_fired" in problems


def test_new_keys_never_fail():
    current = json.loads(json.dumps(BASELINE))
    current["reactive"] = {"overhead_ratio_vs_passive": 1.1}
    current["remeasurement"]["brand_new"] = 7
    assert check_bench.check(BASELINE, current) == []


def test_speedup_regression_fails_and_improvement_passes():
    slower = json.loads(json.dumps(BASELINE))
    slower["speedup"] = 6.0 * 0.55  # past even the widened 40% band
    problems = check_bench.check(BASELINE, slower)
    assert any(p.startswith("speedup:") for p in problems)

    faster = json.loads(json.dumps(BASELINE))
    faster["speedup"] = 60.0
    assert check_bench.check(BASELINE, faster) == []


def test_machine_profile_ratios_get_the_wider_band():
    """'speedup' compares interpreter-bound vs numpy-bound paths, so its
    run-to-run noise approaches the default tolerance; a shift inside the
    widened per-key band must not fail the gate."""
    wobbling = json.loads(json.dumps(BASELINE))
    wobbling["speedup"] = 6.0 * 0.74  # past 25%, inside 40%
    assert check_bench.check(BASELINE, wobbling) == []


def test_overhead_regression_is_direction_aware():
    heavier = json.loads(json.dumps(BASELINE))
    heavier["client_clouds"]["overhead_ratio_vs_uniform"] = 1.4 * 1.26
    problems = check_bench.check(BASELINE, heavier)
    assert any(
        p.startswith("client_clouds.overhead_ratio_vs_uniform:") for p in problems
    )

    lighter = json.loads(json.dumps(BASELINE))
    lighter["client_clouds"]["overhead_ratio_vs_uniform"] = 0.9
    assert check_bench.check(BASELINE, lighter) == []


def test_interpreter_bound_overheads_get_the_wider_band():
    """The remeasurement/reactive ratios move with interpreter state (their
    observed no-code-change span exceeds the default tolerance), so they
    carry the 40% per-key band — inside it passes, past it still fails."""
    wobbling = json.loads(json.dumps(BASELINE))
    wobbling["remeasurement"]["overhead_ratio_vs_passive"] = 1.2 * 1.35
    assert check_bench.check(BASELINE, wobbling) == []

    runaway = json.loads(json.dumps(BASELINE))
    runaway["remeasurement"]["overhead_ratio_vs_passive"] = 1.2 * 1.45
    problems = check_bench.check(BASELINE, runaway)
    assert any(
        p.startswith("remeasurement.overhead_ratio_vs_passive:") for p in problems
    )


def test_absolute_ceiling_fails_even_without_a_baseline():
    """The kernel overhead ratio is an acceptance criterion: its absolute
    1.05 ceiling applies whenever the current file records the ratio, even
    when the baseline predates the kernel section entirely."""
    current = json.loads(json.dumps(BASELINE))
    current["kernel"] = {"overhead_ratio_vs_pre_kernel": 1.12}
    problems = check_bench.check(BASELINE, current)
    assert any(
        "kernel.overhead_ratio_vs_pre_kernel" in p and "absolute ceiling" in p
        for p in problems
    )

    within = json.loads(json.dumps(BASELINE))
    within["kernel"] = {"overhead_ratio_vs_pre_kernel": 1.03}
    assert check_bench.check(BASELINE, within) == []


def test_absolute_ceiling_caps_the_relative_band():
    """A noise-low committed baseline must not let the wide relative band
    admit a ratio past the hard 1.05 acceptance ceiling."""
    baseline = json.loads(json.dumps(BASELINE))
    baseline["kernel"] = {"overhead_ratio_vs_pre_kernel": 0.90}
    # 0.90 * 1.40 = 1.26 relative ceiling, but the absolute 1.05 still bites.
    over = json.loads(json.dumps(baseline))
    over["kernel"]["overhead_ratio_vs_pre_kernel"] = 1.10
    problems = check_bench.check(baseline, over)
    assert any("absolute ceiling" in p for p in problems)

    under = json.loads(json.dumps(baseline))
    under["kernel"]["overhead_ratio_vs_pre_kernel"] = 1.04
    assert check_bench.check(baseline, under) == []


def test_tolerance_is_configurable():
    slightly_heavier = json.loads(json.dumps(BASELINE))
    slightly_heavier["client_clouds"]["overhead_ratio_vs_uniform"] = 1.4 * 1.1
    assert check_bench.check(BASELINE, slightly_heavier) == []
    problems = check_bench.check(BASELINE, slightly_heavier, tolerance=0.05)
    assert any(
        p.startswith("client_clouds.overhead_ratio_vs_uniform:") for p in problems
    )


def test_cli_exit_codes(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    current_path = tmp_path / "current.json"
    baseline_path.write_text(json.dumps(BASELINE))
    current_path.write_text(json.dumps(BASELINE))
    assert check_bench.main(
        [str(current_path), "--baseline", str(baseline_path)]
    ) == 0
    broken = json.loads(json.dumps(BASELINE))
    del broken["client_clouds"]
    current_path.write_text(json.dumps(broken))
    assert check_bench.main(
        [str(current_path), "--baseline", str(baseline_path)]
    ) == 1


def test_committed_record_passes_its_own_gate():
    committed = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
    assert check_bench.check(committed, committed) == []
    # Every gated ratio the record carries is a real number.
    gated = [
        key
        for key in check_bench.RATIO_KEYS
        if check_bench._lookup(committed, key) is not None
    ]
    assert len(gated) >= 5


def test_committed_record_has_the_reactive_section():
    """The reactive overhead ratio is part of the trajectory from PR 5 on."""
    committed = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
    reactive = committed["reactive"]
    assert reactive["overhead_ratio_vs_passive"] > 0  # value is machine-specific
    assert reactive["requests_per_sec"] > 0
    assert reactive["shifts"] > 0
    assert reactive["rekeys"] > 0
