"""Conformance suite for the unified request-service kernel.

The kernel contract (:mod:`repro.sim.kernel`) has three observable
promises, each pinned here:

* **Canonical stage order** — every request's executed stages, as seen by
  a ``stage_observer``, are a subsequence of
  :data:`~repro.sim.kernel.KERNEL_STAGES`, and the full emitted trace is
  *identical* across all four replay drivers — the drivers own iteration
  order, never the service sequence.
* **Degenerate transparency** — with every optional subsystem off, the
  kernel-unified simulator reproduces the pre-kernel seed behaviour
  bit-for-bit (golden fixture captured before the refactor).
* **Observer transparency** — installing a ``stage_observer`` routes
  requests through the scalar kernel path; the metrics must not move.

The seam itself (drivers must not call subsystem internals) is enforced
statically by ``scripts/check_kernel.py`` (``make kernel-check``), whose
detector is exercised against synthetic violations at the bottom.
"""

from __future__ import annotations

import json
import sys
from dataclasses import replace as _replace
from functools import lru_cache
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import run_replay_paths
from repro.core.policies import make_policy
from repro.network.distributions import NLANRBandwidthDistribution
from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.faults import FaultConfig
from repro.sim.hierarchy import CacheTier, HierarchyConfig
from repro.sim.kernel import KERNEL_STAGES
from repro.sim.simulator import ProxyCacheSimulator
from repro.sim.streaming import StreamingConfig
from repro.trace.columnar import ColumnarTrace
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_kernel  # noqa: E402  (scripts/ is not a package)

GOLDEN_PATH = Path(__file__).parent / "data" / "kernel_degenerate_golden.json"

_STAGE_INDEX = {stage: position for position, stage in enumerate(KERNEL_STAGES)}


@lru_cache(maxsize=None)
def _workload(seed: int = 7):
    return GismoWorkloadGenerator(
        WorkloadConfig(num_objects=50, num_requests=1_500, num_servers=10, seed=seed)
    ).generate()


def _config(**overrides) -> SimulationConfig:
    base = dict(cache_size_gb=1.0, seed=5, verify_store=True)
    base.update(overrides)
    return SimulationConfig(**base)


#: Config variants that light up different kernel stages: each optional
#: subsystem must emit the same stage trace on every driver.
STAGE_CONFIGS = {
    "plain": lambda: _config(),
    "passive-reactive": lambda: _config(
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        reactive_threshold=0.15,
        reactive_passive=True,
        reactive_hysteresis=0.05,
    ),
    "faults": lambda: _config(
        faults=FaultConfig(
            random_origin_outages=2,
            random_bandwidth_flaps=3,
            mean_duration_s=500.0,
            seed=3,
        )
    ),
    "streaming": lambda: _config(streaming=StreamingConfig(fraction=1.0, seed=2)),
    "clouds": lambda: _config(
        client_clouds=ClientCloudConfig(
            groups=4, distribution=NLANRBandwidthDistribution()
        )
    ),
    "hierarchy": lambda: _config(
        hierarchy=HierarchyConfig(
            tiers=(
                CacheTier(name="edge", cache_kb=200_000.0, uplink_bandwidth=50.0),
                CacheTier(name="parent", cache_kb=800_000.0, uplink_bandwidth=40.0),
            ),
            num_pops=2,
        )
    ),
}


def _stage_traces(workload, config, policy_name="PB"):
    """Replay on all four drivers with a recording stage observer.

    Returns ``{label: [(index, stage), ...]}`` — the full per-run stage
    emission in execution order, plus the results for metric checks.
    """
    trace = workload.trace
    if isinstance(trace, ColumnarTrace):
        columnar, plain = workload, _replace(
            workload, trace=trace.to_request_trace()
        )
    else:
        columnar = _replace(
            workload, trace=ColumnarTrace.from_request_trace(trace)
        )
        plain = workload
    grid = (
        ("event", plain, "event"),
        ("fast", plain, "fast"),
        ("columnar-fast", columnar, "columnar"),
        ("columnar-event", columnar, "columnar-event"),
    )
    traces, results = {}, {}
    for label, wl, replay in grid:
        emitted = []
        results[label] = ProxyCacheSimulator(wl, config).run(
            make_policy(policy_name),
            replay=replay,
            stage_observer=lambda index, stage, _out=emitted: _out.append(
                (index, stage)
            ),
        )
        traces[label] = emitted
    return traces, results


def _assert_canonical(trace) -> None:
    """Every request's stages are ordered as KERNEL_STAGES orders them."""
    last_position = {}
    for index, stage in trace:
        assert stage in _STAGE_INDEX, stage
        position = _STAGE_INDEX[stage]
        if index in last_position:
            assert position >= last_position[index], (
                f"request {index}: stage {stage!r} fired after a "
                f"later-canonical stage"
            )
        last_position[index] = position


@pytest.mark.parametrize("variant", sorted(STAGE_CONFIGS))
def test_stage_traces_canonical_and_driver_identical(variant):
    """All four drivers emit the same stages in the same canonical order."""
    traces, results = _stage_traces(_workload(), STAGE_CONFIGS[variant]())
    reference = traces["event"]
    assert reference, "observer saw no stages"
    served = {stage for _, stage in reference}
    assert "resolve" in served and "delivery" in served
    _assert_canonical(reference)
    for label, trace in traces.items():
        assert trace == reference, (variant, label)
    # Observation must not perturb the simulation itself.
    metrics_reference = results["event"].as_dict()
    for label, result in results.items():
        assert result.as_dict() == metrics_reference, (variant, label)


def test_subsystem_stages_fire_only_when_configured():
    """The optional stages appear exactly when their subsystem is on."""
    plain_traces, _ = _stage_traces(_workload(), STAGE_CONFIGS["plain"]())
    plain_stages = {stage for _, stage in plain_traces["event"]}
    assert "faults" not in plain_stages
    assert "passive" not in plain_stages
    assert "verify" in plain_stages  # verify_store=True in the base config

    fault_traces, _ = _stage_traces(_workload(), STAGE_CONFIGS["faults"]())
    assert "faults" in {stage for _, stage in fault_traces["event"]}
    hier_traces, _ = _stage_traces(_workload(), STAGE_CONFIGS["hierarchy"]())
    assert "residency" in {stage for _, stage in hier_traces["event"]}
    passive_traces, _ = _stage_traces(
        _workload(), STAGE_CONFIGS["passive-reactive"]()
    )
    assert "passive" in {stage for _, stage in passive_traces["event"]}


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_stage_trace_identity_holds_for_any_simulation_seed(seed):
    """Driver-identical stage traces are a property of the kernel, not of
    one lucky seed: the simulation seed moves bandwidths, warmup draws,
    and cache contents, and the trace must stay path-identical."""
    traces, _ = _stage_traces(
        _workload(), SimulationConfig(cache_size_gb=1.0, seed=seed)
    )
    reference = traces["event"]
    _assert_canonical(reference)
    for label, trace in traces.items():
        assert trace == reference, (seed, label)


def test_degenerate_all_off_matches_pre_kernel_golden():
    """With every optional subsystem off, the kernel-unified simulator
    reproduces the pre-refactor behaviour bit-for-bit, per policy.

    The fixture was captured from the last pre-kernel commit; a diff here
    means the refactor changed simulation semantics, not just structure.
    """
    golden = json.loads(GOLDEN_PATH.read_text())
    workload = _workload(seed=7)
    for policy_name, expected in sorted(golden.items()):
        result = ProxyCacheSimulator(workload, _config()).run(
            make_policy(policy_name)
        )
        assert json.loads(json.dumps(result.as_dict())) == expected, policy_name


def test_observer_mode_is_bit_identical_to_batch_mode():
    """The observer routes requests through the scalar kernel path; the
    metrics must be exactly those of the uninstrumented batch path."""
    workload = _workload()
    config = STAGE_CONFIGS["streaming"]()
    plain = run_replay_paths(workload, config)
    _, observed_results = _stage_traces(workload, config)
    for label, result in observed_results.items():
        assert result.as_dict() == plain[label].as_dict(), label


# ----------------------------------------------------------------------
# The static seam gate (scripts/check_kernel.py).
# ----------------------------------------------------------------------
def test_kernel_gate_passes_on_current_drivers():
    assert check_kernel.check_file() == []


def test_kernel_gate_counts_the_four_drivers(tmp_path):
    stub = tmp_path / "simulator.py"
    stub.write_text(
        "class ProxyCacheSimulator:\n"
        "    def _replay_events(self, ctx, engine):\n"
        "        serve_request(ctx, 0, 0, 0.0)\n"
    )
    problems = check_kernel.check_file(stub)
    assert any("expected the four replay drivers" in p for p in problems)


VIOLATIONS = {
    "subsystem class": (
        "        injector_cls = FaultInjector\n",
        "names subsystem class",
    ),
    "subsystem instance": (
        "        injector.intercept(0.0, 1, 2.0)\n",
        "reads subsystem instance",
    ),
    "self state": (
        "        self.config.seed\n",
        "touches self.config",
    ),
    "kernel state": (
        "        ctx.collector.record(None)\n",
        "reads ctx.collector",
    ),
}


@pytest.mark.parametrize("violation", sorted(VIOLATIONS))
def test_kernel_gate_flags_driver_violations(tmp_path, violation):
    body, expected = VIOLATIONS[violation]
    stub = tmp_path / "simulator.py"
    stub.write_text(
        "class ProxyCacheSimulator:\n"
        + "".join(
            f"    def _replay_{name}(self, ctx):\n"
            "        serve_batch(ctx, [], [], 0, 0)\n"
            for name in ("events", "fast", "fast_columnar")
        )
        + "    def _replay_events_columnar(self, ctx):\n"
        "        serve_batch(ctx, [], [], 0, 0)\n" + body
    )
    problems = check_kernel.check_file(stub)
    assert any(expected in p for p in problems), problems


def test_kernel_gate_requires_delegation(tmp_path):
    stub = tmp_path / "simulator.py"
    stub.write_text(
        "class ProxyCacheSimulator:\n"
        + "".join(
            f"    def _replay_{name}(self, ctx):\n"
            "        serve_batch(ctx, [], [], 0, 0)\n"
            for name in ("events", "fast", "fast_columnar")
        )
        + "    def _replay_events_columnar(self, ctx):\n"
        "        pass\n"
    )
    problems = check_kernel.check_file(stub)
    assert any(
        "never calls serve_request/serve_batch" in p for p in problems
    ), problems
