"""Fault injection and graceful degradation on the delivery path.

The paper's premise is that cache utility depends on the network path to
the origin server — and PR 4/5's passive/reactive machinery has only ever
seen *gradual* bandwidth shifts.  This module models the adversarial cases
a production proxy actually faces:

* **origin-server outages** — the cache-to-server path delivers nothing
  for the duration of the episode,
* **per-group last-mile link failures** — one client group's cache-to-
  client hop goes dark,
* **bandwidth flaps** — either hop's bandwidth collapses to a fraction of
  its normal value and later recovers,

plus a **fetch-failure model** on the delivery path: each fetch attempt
carries a timeout derived from the request's *expected* transfer time
(an attempt whose effective bandwidth factor falls below
``1 / timeout_factor`` would take more than ``timeout_factor`` times the
unfaulted transfer time and is treated as timed out), failed attempts are
retried a bounded number of times with exponential backoff, and when all
attempts fail the cache **serves stale** — an unreachable origin's cached
prefix is streamed with a staleness counter instead of erroring.

Episodes are described by :class:`FaultEpisode`, bundled (scripted and/or
stochastically generated) by :class:`FaultConfig` /
:class:`FaultSchedule`, and applied at replay time by
:class:`FaultInjector`.  The injector is deliberately *outside* the
request stream's random generator: scripted and stochastic episodes draw
from a dedicated stream (:data:`_FAULT_STREAM_TAG`), so with
``faults=None`` the simulator's arithmetic — and with faults enabled the
request stream's bandwidth draws — are untouched.  The simulator calls
:meth:`FaultInjector.intercept` once per request on every replay path, at
the same sequence point, which is what keeps the four replay loops
bit-identical with faults enabled too (``tests/test_sim_faults.py``).

Outages are visible to the learning machinery as *bandwidth collapse*:
while an origin is unreachable the passive estimator is fed the
:data:`~repro.network.path.BANDWIDTH_FLOOR` sample a completely stalled
transfer would report, so :class:`~repro.sim.events.ReactiveRekeyer`
observes the collapse (and the recovery) exactly as it would a genuine
shift — fault storms are the stress test for hysteresis and re-key caps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.path import BANDWIDTH_FLOOR

#: Episode kinds: the two origin-side faults target a ``server_id`` (or all
#: servers when ``None``); the two link-side faults target a client-group
#: ``group_id`` (or all groups when ``None``).
FAULT_KINDS = ("origin-outage", "bandwidth-flap", "link-down", "link-flap")

_ORIGIN_KINDS = ("origin-outage", "bandwidth-flap")
_LINK_KINDS = ("link-down", "link-flap")

#: Entropy tag mixed into the fault stream's seed so stochastic episode
#: generation never collides with the request stream (bare config seed),
#: the re-measurement stream, or the client-cloud stream.
_FAULT_STREAM_TAG = 0x464C54

#: ``intercept`` disposition codes: the fetch succeeded (possibly degraded
#: and/or after retries) or every attempt timed out.
FETCH_OK = 0
FETCH_FAILED = 1


def stale_quality(
    cached: float, duration: float, bitrate: float, quantum: float
) -> float:
    """Stream quality of a stale serve: the cached prefix is all there is.

    With the origin unreachable, the supported rate is the cached prefix
    spread over the playout duration — no origin stream contributes.  The
    quantisation mirrors the layered-encoding arithmetic of
    :meth:`~repro.workload.catalog.MediaObject.stream_quality`; every
    replay path calls this one helper so stale serves stay bit-identical
    across loops.
    """
    supported_rate = cached / duration
    fraction = supported_rate / bitrate
    if fraction >= 1.0:
        return 1.0
    return int(fraction / quantum + 1e-9) * quantum


@dataclass(frozen=True)
class FaultEpisode:
    """One fault episode: a half-open time interval ``[start, end)``.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.  ``"origin-outage"`` and
        ``"bandwidth-flap"`` degrade the cache-to-server hop of
        ``server_id``; ``"link-down"`` and ``"link-flap"`` degrade the
        cache-to-client hop of client group ``group_id``.
    start, end:
        Episode interval in trace time (seconds); active for
        ``start <= t < end``.
    server_id:
        Target origin server for origin-side kinds.  ``None`` hits every
        server (a full upstream outage).
    group_id:
        Target client group for link-side kinds.  ``None`` hits every
        group.
    factor:
        Bandwidth multiplier while the episode is active.  Outage kinds
        (``"origin-outage"``, ``"link-down"``) require ``0.0``; flap kinds
        require a factor in ``(0, 1)``.  Overlapping episodes on the same
        target compose by taking the *worst* (minimum) factor.
    """

    kind: str
    start: float
    end: float
    server_id: Optional[int] = None
    group_id: Optional[int] = None
    factor: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not self.start < self.end:
            raise ConfigurationError(
                f"fault episode must have start < end, got [{self.start}, {self.end})"
            )
        if self.kind in _ORIGIN_KINDS and self.group_id is not None:
            raise ConfigurationError(
                f"{self.kind} episodes target a server_id, not a group_id"
            )
        if self.kind in _LINK_KINDS and self.server_id is not None:
            raise ConfigurationError(
                f"{self.kind} episodes target a group_id, not a server_id"
            )
        if self.kind in ("origin-outage", "link-down"):
            if self.factor != 0.0:
                raise ConfigurationError(
                    f"{self.kind} episodes must have factor 0.0, got {self.factor}"
                )
        elif not 0.0 < self.factor < 1.0:
            raise ConfigurationError(
                f"{self.kind} episodes need a factor in (0, 1), got {self.factor}"
            )

    @property
    def is_origin(self) -> bool:
        """Whether this episode degrades the cache-to-server hop."""
        return self.kind in _ORIGIN_KINDS

    @property
    def is_outage(self) -> bool:
        """Whether this episode is a hard outage (factor 0)."""
        return self.factor == 0.0

    @property
    def duration(self) -> float:
        """Episode length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class FaultSchedule:
    """A resolved, time-sorted collection of fault episodes.

    Produced by :meth:`FaultConfig.build_schedule`, which expands the
    scripted episodes plus any stochastically generated ones against a
    concrete topology; all targets are validated against it.
    """

    episodes: Tuple[FaultEpisode, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "episodes",
            tuple(sorted(self.episodes, key=lambda ep: (ep.start, ep.end))),
        )

    def __bool__(self) -> bool:
        return bool(self.episodes)

    def __len__(self) -> int:
        return len(self.episodes)

    @property
    def origin_episodes(self) -> Tuple[FaultEpisode, ...]:
        """Episodes degrading the cache-to-server hop."""
        return tuple(ep for ep in self.episodes if ep.is_origin)

    @property
    def link_episodes(self) -> Tuple[FaultEpisode, ...]:
        """Episodes degrading the cache-to-client hop."""
        return tuple(ep for ep in self.episodes if not ep.is_origin)

    def window(self) -> Optional[Tuple[float, float]]:
        """Earliest start and latest end across episodes (None when empty)."""
        if not self.episodes:
            return None
        return (
            min(ep.start for ep in self.episodes),
            max(ep.end for ep in self.episodes),
        )


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection settings of one simulation run.

    Scripted ``episodes`` are replayed as given; the ``random_*`` knobs
    additionally draw that many stochastic episodes (uniform start inside
    the trace window, exponential duration with mean ``mean_duration_s``,
    uniformly chosen target) from a dedicated random stream seeded by
    ``(stream tag, seed, simulation seed)`` — fault generation never
    perturbs the request stream's bandwidth draws.

    The fetch model applies to every request while any fault degrades its
    hops: an attempt whose effective bandwidth factor is below
    ``1 / timeout_factor`` would exceed ``timeout_factor x`` the expected
    transfer time and times out; up to ``max_retries`` retries follow, the
    ``k``-th waiting ``backoff_base_s * 2**(k-1)`` seconds (deterministic
    exponential backoff — no jitter, so every replay path sees identical
    timings).  When all attempts fail, ``serve_stale`` streams the cached
    prefix (counted as a stale serve) instead of failing the request.

    ``recovery_fraction`` parameterises the mean-time-to-recovery metric:
    after an origin outage ends, its estimate counts as recovered at the
    first request whose believed bandwidth has climbed back to this
    fraction of the pre-outage estimate.
    """

    episodes: Tuple[FaultEpisode, ...] = ()
    random_origin_outages: int = 0
    random_bandwidth_flaps: int = 0
    random_link_flaps: int = 0
    mean_duration_s: float = 600.0
    severity: float = 0.1
    seed: int = 0
    timeout_factor: float = 4.0
    max_retries: int = 2
    backoff_base_s: float = 1.0
    serve_stale: bool = True
    recovery_fraction: float = 0.8

    def __post_init__(self) -> None:
        object.__setattr__(self, "episodes", tuple(self.episodes))
        for name in (
            "random_origin_outages",
            "random_bandwidth_flaps",
            "random_link_flaps",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative, got {getattr(self, name)}"
                )
        if self.mean_duration_s <= 0:
            raise ConfigurationError(
                f"mean_duration_s must be positive, got {self.mean_duration_s}"
            )
        if not 0.0 < self.severity < 1.0:
            raise ConfigurationError(
                f"severity must be in (0, 1), got {self.severity}"
            )
        if self.timeout_factor <= 1.0:
            raise ConfigurationError(
                f"timeout_factor must be > 1, got {self.timeout_factor}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_base_s <= 0:
            raise ConfigurationError(
                f"backoff_base_s must be positive, got {self.backoff_base_s}"
            )
        if not 0.0 < self.recovery_fraction <= 1.0:
            raise ConfigurationError(
                f"recovery_fraction must be in (0, 1], got {self.recovery_fraction}"
            )

    @property
    def backoff_budget_s(self) -> float:
        """Worst-case total wait before a fetch is declared failed."""
        if self.max_retries == 0:
            return 0.0
        return self.backoff_base_s * ((1 << self.max_retries) - 1)

    def with_episodes(self, episodes: Sequence[FaultEpisode]) -> "FaultConfig":
        """Copy of this config with a different scripted episode list."""
        return replace(self, episodes=tuple(episodes))

    def build_schedule(
        self,
        topology,
        trace_start: float,
        trace_end: float,
        base_seed: int = 0,
    ) -> FaultSchedule:
        """Resolve scripted + stochastic episodes against a topology.

        Scripted episode targets are validated (a named ``server_id`` must
        have a registered path; a named ``group_id`` must be a modeled
        client group); stochastic episodes draw their targets uniformly
        from the topology's servers/groups.  ``base_seed`` is the
        simulation seed, mixed into the fault stream so two runs differing
        only in simulation seed see different stochastic fault timings.
        """
        server_ids, group_count = topology.fault_domains()
        for episode in self.episodes:
            if episode.server_id is not None and episode.server_id not in set(
                server_ids
            ):
                raise ConfigurationError(
                    f"fault episode targets server {episode.server_id}, which "
                    "has no registered path"
                )
            if episode.group_id is not None and not (
                0 <= episode.group_id < group_count
            ):
                raise ConfigurationError(
                    f"fault episode targets client group {episode.group_id}, "
                    f"but the topology models {group_count} group(s)"
                )
        if self.random_link_flaps and group_count == 0:
            raise ConfigurationError(
                "random_link_flaps requires a modeled client cloud "
                "(SimulationConfig.client_clouds); the unmodeled abundant "
                "last mile has no links to flap"
            )
        episodes: List[FaultEpisode] = list(self.episodes)
        total_random = (
            self.random_origin_outages
            + self.random_bandwidth_flaps
            + self.random_link_flaps
        )
        if total_random:
            rng = np.random.default_rng(
                (
                    _FAULT_STREAM_TAG,
                    self.seed & 0xFFFFFFFF,
                    base_seed & 0xFFFFFFFF,
                )
            )
            span = max(trace_end - trace_start, 0.0)
            for kind, count in (
                ("origin-outage", self.random_origin_outages),
                ("bandwidth-flap", self.random_bandwidth_flaps),
                ("link-flap", self.random_link_flaps),
            ):
                for _ in range(count):
                    start = trace_start + float(rng.uniform(0.0, span))
                    duration = max(float(rng.exponential(self.mean_duration_s)), 1.0)
                    if kind in _ORIGIN_KINDS:
                        target = int(server_ids[int(rng.integers(len(server_ids)))])
                        episodes.append(
                            FaultEpisode(
                                kind=kind,
                                start=start,
                                end=start + duration,
                                server_id=target,
                                factor=0.0 if kind == "origin-outage" else self.severity,
                            )
                        )
                    else:
                        target = int(rng.integers(group_count))
                        episodes.append(
                            FaultEpisode(
                                kind=kind,
                                start=start,
                                end=start + duration,
                                group_id=target,
                                factor=self.severity,
                            )
                        )
        return FaultSchedule(tuple(episodes))


@dataclass(frozen=True)
class FaultReport:
    """Whole-run fault accounting attached to a simulation result.

    Unlike :class:`~repro.sim.metrics.SimulationMetrics` (which counts
    only the measurement phase), the report covers the entire replay
    including warm-up — an outage during warm-up still shapes the cache.

    ``recoveries`` lists ``(server_id, seconds)`` pairs: for each origin
    outage, how long after the episode ended the passive estimate climbed
    back to ``recovery_fraction`` of its pre-outage value.  Episodes whose
    estimate never recovered before the trace ended are counted in
    ``unrecovered``; ``mean_time_to_recovery_s`` is ``None`` when no
    episode recovered (or the run had no passive estimator).
    """

    episodes: int = 0
    origin_episodes: int = 0
    link_episodes: int = 0
    degraded_requests: int = 0
    retried_requests: int = 0
    total_retries: int = 0
    failed_fetches: int = 0
    stale_serves: int = 0
    failed_requests: int = 0
    recoveries: Tuple[Tuple[int, float], ...] = ()
    unrecovered: int = 0

    @property
    def mean_time_to_recovery_s(self) -> Optional[float]:
        """Mean estimate-recovery time across recovered outages (seconds)."""
        if not self.recoveries:
            return None
        return sum(seconds for _, seconds in self.recoveries) / len(self.recoveries)

    def as_dict(self) -> Dict[str, float]:
        """Flatten the report for tables and JSON."""
        mttr = self.mean_time_to_recovery_s
        return {
            "episodes": float(self.episodes),
            "origin_episodes": float(self.origin_episodes),
            "link_episodes": float(self.link_episodes),
            "degraded_requests": float(self.degraded_requests),
            "retried_requests": float(self.retried_requests),
            "total_retries": float(self.total_retries),
            "failed_fetches": float(self.failed_fetches),
            "stale_serves": float(self.stale_serves),
            "failed_requests": float(self.failed_requests),
            "recovered_outages": float(len(self.recoveries)),
            "unrecovered_outages": float(self.unrecovered),
            "mean_time_to_recovery_s": mttr if mttr is not None else float("nan"),
        }


class FaultInjector:
    """Apply a :class:`FaultSchedule` to the replay, one request at a time.

    The simulator calls :meth:`intercept` for every request, at the same
    sequence point on all four replay paths.  The injector keeps a
    monotone pointer over the schedule's start/end boundaries (requests
    arrive in non-decreasing time), so the per-request cost when no fault
    is active is one comparison.

    ``intercept`` returns ``None`` when the request is completely
    untouched — the loops then run the exact pre-change arithmetic — or a
    disposition tuple ``(code, observed, origin_sample, waited, retries)``:

    * ``code`` — :data:`FETCH_OK` (served, possibly degraded and/or after
      retries) or :data:`FETCH_FAILED` (all attempts timed out),
    * ``observed`` — delivered bandwidth (KB/s) after applying the active
      factors (the bandwidth floor a stalled transfer reports on failure),
    * ``origin_sample`` — the throughput sample the passive estimator
      should observe for the origin hop (collapses to the floor during an
      outage, which is how the reactive machinery sees the fault),
    * ``waited`` — seconds spent in retry backoff before the final
      attempt (0.0 for a first-attempt serve),
    * ``retries`` — number of retry attempts consumed.

    On :data:`FETCH_FAILED` the caller decides between a stale serve and
    a hard failure (it knows the cached prefix) and reports the outcome
    back through :meth:`record_unserved`.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        config: FaultConfig,
        estimator=None,
    ):
        self.schedule = schedule
        self.config = config
        self._estimator = estimator
        self._min_factor = 1.0 / config.timeout_factor
        self._max_retries = config.max_retries
        self._backoff_base = config.backoff_base_s
        self.serve_stale = config.serve_stale

        # Per-target episode intervals, for point-in-time factor queries
        # (retry attempts evaluate factors at future times).
        self._server_intervals: Dict[Optional[int], List[FaultEpisode]] = {}
        self._group_intervals: Dict[Optional[int], List[FaultEpisode]] = {}
        for episode in schedule.episodes:
            if episode.is_origin:
                self._server_intervals.setdefault(episode.server_id, []).append(
                    episode
                )
            else:
                self._group_intervals.setdefault(episode.group_id, []).append(episode)

        # Boundary stream for the monotone pointer: ends sort before
        # starts at equal times ([start, end) interval semantics).
        boundaries: List[Tuple[float, int, int, FaultEpisode]] = []
        for index, episode in enumerate(schedule.episodes):
            boundaries.append((episode.end, 0, index, episode))
            boundaries.append((episode.start, 1, index, episode))
        boundaries.sort(key=lambda item: (item[0], item[1], item[2]))
        self._boundaries = boundaries
        self._boundary_pos = 0
        self._next_boundary = boundaries[0][0] if boundaries else float("inf")

        # Active factors per concrete target; the None key means
        # "every server/group" and is folded in at query time.
        self._active_server: Dict[Optional[int], List[float]] = {}
        self._active_group: Dict[Optional[int], List[float]] = {}

        # Mean-time-to-recovery bookkeeping for origin outages.
        self._prefault_estimates: Dict[Tuple[int, int], float] = {}
        self._pending_recoveries: Dict[int, List[Tuple[float, float]]] = {}
        self._recoveries: List[Tuple[int, float]] = []

        # Whole-run counters (the measurement-phase view lives in
        # SimulationMetrics; this one includes warm-up).
        self.degraded_requests = 0
        self.retried_requests = 0
        self.total_retries = 0
        self.failed_fetches = 0
        self.stale_serves = 0
        self.failed_requests = 0

        #: Optional :class:`repro.obs.tracing.TraceSink` the simulator
        #: attaches for the duration of one traced run; when set, episode
        #: boundaries, retries, and failed fetches emit trace events.
        self.trace = None

    # -- boundary processing -------------------------------------------
    def _advance(self, now: float) -> None:
        """Process every episode boundary at or before ``now``, in order."""
        boundaries = self._boundaries
        pos = self._boundary_pos
        count = len(boundaries)
        while pos < count and boundaries[pos][0] <= now:
            _, action, index, episode = boundaries[pos]
            pos += 1
            if episode.is_origin:
                active = self._active_server.setdefault(episode.server_id, [])
            else:
                active = self._active_group.setdefault(episode.group_id, [])
            if action == 1:  # start
                active.append(episode.factor)
                if self.trace is not None:
                    self.trace.emit(
                        "info",
                        "fault-episode-start",
                        episode.start,
                        kind=episode.kind,
                        server=episode.server_id,
                        group=episode.group_id,
                        factor=episode.factor,
                        until=episode.end,
                    )
                if episode.kind == "origin-outage" and self._estimator is not None:
                    for server in self._servers_of(episode):
                        self._prefault_estimates[(index, server)] = (
                            self._estimator.estimate(server)
                        )
            else:  # end
                active.remove(episode.factor)
                if self.trace is not None:
                    self.trace.emit(
                        "info",
                        "fault-episode-end",
                        episode.end,
                        kind=episode.kind,
                        server=episode.server_id,
                        group=episode.group_id,
                        factor=episode.factor,
                    )
                if episode.kind == "origin-outage" and self._estimator is not None:
                    for server in self._servers_of(episode):
                        snapshot = self._prefault_estimates.pop(
                            (index, server), None
                        )
                        if snapshot is not None and snapshot > 0.0:
                            self._pending_recoveries.setdefault(server, []).append(
                                (
                                    episode.end,
                                    self.config.recovery_fraction * snapshot,
                                )
                            )
        self._boundary_pos = pos
        self._next_boundary = boundaries[pos][0] if pos < count else float("inf")

    def _servers_of(self, episode: FaultEpisode) -> Tuple[int, ...]:
        """Concrete servers an origin episode covers (for MTTR snapshots)."""
        if episode.server_id is not None:
            return (episode.server_id,)
        if self._estimator is None:
            return ()
        return tuple(self._estimator.known_servers())

    # -- factor queries ------------------------------------------------
    def _server_factor_now(self, server_id: int) -> float:
        """Effective origin factor for a server at the current pointer time."""
        worst = 1.0
        active = self._active_server.get(server_id)
        if active:
            worst = min(active)
        broadcast = self._active_server.get(None)
        if broadcast:
            candidate = min(broadcast)
            if candidate < worst:
                worst = candidate
        return worst

    def _group_factor_now(self, group_id: Optional[int]) -> float:
        """Effective last-mile factor for a client group right now."""
        if group_id is None:
            return 1.0
        worst = 1.0
        active = self._active_group.get(group_id)
        if active:
            worst = min(active)
        broadcast = self._active_group.get(None)
        if broadcast:
            candidate = min(broadcast)
            if candidate < worst:
                worst = candidate
        return worst

    def _factor_at(
        self,
        intervals: Dict[Optional[int], List[FaultEpisode]],
        target: Optional[int],
        t: float,
    ) -> float:
        """Effective factor for ``target`` at an arbitrary (future) time."""
        worst = 1.0
        for key in (target, None):
            episodes = intervals.get(key)
            if not episodes:
                continue
            for episode in episodes:
                if episode.start <= t < episode.end and episode.factor < worst:
                    worst = episode.factor
        return worst

    # -- the kernel seam -----------------------------------------------
    def kernel_hooks(self) -> dict:
        """The fault-evaluation stage hooks for :mod:`repro.sim.kernel`.

        ``intercept`` runs every fetch through the fault model at the
        kernel's *faults* stage; ``record_unserved`` accounts a
        post-retry failure; ``serve_stale`` is the configured
        stale-serving flag.  Binding through this seam (instead of
        reaching into the injector from each replay driver) is what
        ``scripts/check_kernel.py`` enforces.
        """
        return {
            "intercept": self.intercept,
            "record_unserved": self.record_unserved,
            "serve_stale": self.serve_stale,
        }

    # -- the per-request hook ------------------------------------------
    def intercept(
        self,
        now: float,
        server_id: int,
        group_id: Optional[int],
        origin_draw: float,
        lm_draw: Optional[float],
    ) -> Optional[Tuple[int, float, float, float, int]]:
        """Run one request's fetch through the fault model.

        ``origin_draw`` is the request's unfaulted origin-hop bandwidth
        draw; ``lm_draw`` the unfaulted last-mile draw (``None`` when the
        client side is unmodeled).  Returns ``None`` when no active fault
        touches this request (the common case), otherwise a disposition
        tuple — see the class docstring.
        """
        if now >= self._next_boundary:
            self._advance(now)
        if self._pending_recoveries:
            self._check_recovery(now, server_id)
        f_server = self._server_factor_now(server_id)
        f_group = self._group_factor_now(group_id)
        if f_server >= 1.0 and f_group >= 1.0:
            return None
        f_effective = f_server if f_server < f_group else f_group
        if f_effective >= self._min_factor:
            # Degraded but inside the timeout: served at reduced bandwidth.
            self.degraded_requests += 1
            return self._deliver(origin_draw, lm_draw, f_server, f_group, 0.0, 0)
        # First attempt timed out; bounded retries with exponential backoff.
        for attempt in range(1, self._max_retries + 1):
            waited = self._backoff_base * ((1 << attempt) - 1)
            t = now + waited
            f_server = self._factor_at(self._server_intervals, server_id, t)
            f_group = (
                self._factor_at(self._group_intervals, group_id, t)
                if group_id is not None
                else 1.0
            )
            f_effective = f_server if f_server < f_group else f_group
            if f_effective >= self._min_factor:
                self.retried_requests += 1
                self.total_retries += attempt
                if self.trace is not None:
                    self.trace.emit(
                        "debug",
                        "fetch-retry",
                        now,
                        server=server_id,
                        group=group_id,
                        attempts=attempt,
                        waited=waited,
                    )
                return self._deliver(
                    origin_draw, lm_draw, f_server, f_group, waited, attempt
                )
        retries = self._max_retries
        waited = self._backoff_base * ((1 << retries) - 1) if retries else 0.0
        if retries:
            self.retried_requests += 1
            self.total_retries += retries
        self.failed_fetches += 1
        if self.trace is not None:
            self.trace.emit(
                "info",
                "fetch-failed",
                now,
                server=server_id,
                group=group_id,
                retries=retries,
                waited=waited,
            )
        return (FETCH_FAILED, BANDWIDTH_FLOOR, BANDWIDTH_FLOOR, waited, retries)

    def _deliver(
        self,
        origin_draw: float,
        lm_draw: Optional[float],
        f_server: float,
        f_group: float,
        waited: float,
        retries: int,
    ) -> Tuple[int, float, float, float, int]:
        """Compose the degraded two-hop bandwidth into an OK disposition."""
        origin_effective = origin_draw * f_server
        if origin_effective < BANDWIDTH_FLOOR:
            origin_effective = BANDWIDTH_FLOOR
        observed = origin_effective
        if lm_draw is not None:
            lm_effective = lm_draw * f_group
            if lm_effective < BANDWIDTH_FLOOR:
                lm_effective = BANDWIDTH_FLOOR
            if lm_effective < observed:
                observed = lm_effective
        return (FETCH_OK, observed, origin_effective, waited, retries)

    def record_unserved(self, stale: bool) -> None:
        """Count the outcome of one :data:`FETCH_FAILED` disposition."""
        if stale:
            self.stale_serves += 1
        else:
            self.failed_requests += 1

    # -- recovery tracking ---------------------------------------------
    def _check_recovery(self, now: float, server_id: int) -> None:
        """Resolve pending recoveries for a server whose request just arrived."""
        pending = self._pending_recoveries.get(server_id)
        if pending is None or self._estimator is None:
            return
        estimate = self._estimator.estimate(server_id)
        remaining = [
            (ended, target) for ended, target in pending if estimate < target
        ]
        if len(remaining) != len(pending):
            for ended, target in pending:
                if estimate >= target:
                    self._recoveries.append((server_id, now - ended))
            if remaining:
                self._pending_recoveries[server_id] = remaining
            else:
                del self._pending_recoveries[server_id]

    def report(self) -> FaultReport:
        """Build the whole-run :class:`FaultReport`."""
        unrecovered = sum(
            len(pending) for pending in self._pending_recoveries.values()
        ) + len(self._prefault_estimates)
        return FaultReport(
            episodes=len(self.schedule),
            origin_episodes=len(self.schedule.origin_episodes),
            link_episodes=len(self.schedule.link_episodes),
            degraded_requests=self.degraded_requests,
            retried_requests=self.retried_requests,
            total_retries=self.total_retries,
            failed_fetches=self.failed_fetches,
            stale_serves=self.stale_serves,
            failed_requests=self.failed_requests,
            recoveries=tuple(self._recoveries),
            unrecovered=unrecovered,
        )
