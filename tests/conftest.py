"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.distributions import ConstantBandwidthDistribution
from repro.network.topology import DeliveryTopology
from repro.sim.config import SimulationConfig
from repro.workload.catalog import Catalog, MediaObject
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test reproducibility."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_catalog() -> Catalog:
    """A tiny hand-built catalog with known sizes and servers."""
    return Catalog(
        [
            MediaObject(object_id=0, duration=100.0, bitrate=48.0, server_id=0, value=5.0),
            MediaObject(object_id=1, duration=200.0, bitrate=48.0, server_id=1, value=2.0),
            MediaObject(object_id=2, duration=50.0, bitrate=96.0, server_id=2, value=9.0),
            MediaObject(object_id=3, duration=400.0, bitrate=24.0, server_id=0, value=1.0),
        ]
    )


@pytest.fixture
def tiny_workload():
    """A very small but fully structured GISMO workload (fast to simulate)."""
    config = WorkloadConfig(
        num_objects=50,
        num_requests=1_500,
        num_servers=10,
        seed=7,
    )
    return GismoWorkloadGenerator(config).generate()


@pytest.fixture
def small_workload():
    """A moderately sized workload for integration tests."""
    config = WorkloadConfig(
        num_objects=200,
        num_requests=5_000,
        num_servers=40,
        seed=11,
    )
    return GismoWorkloadGenerator(config).generate()


@pytest.fixture
def uniform_bandwidth_topology(small_catalog, rng) -> DeliveryTopology:
    """Topology where every path has the same 30 KB/s base bandwidth."""
    return DeliveryTopology.build(
        catalog=small_catalog,
        cache_capacity_kb=10_000.0,
        bandwidth_distribution=ConstantBandwidthDistribution(30.0),
        rng=rng,
    )


@pytest.fixture
def fast_sim_config() -> SimulationConfig:
    """Simulation config suitable for quick unit/integration tests."""
    return SimulationConfig(cache_size_gb=1.0, seed=5, verify_store=True)
