"""Multi-run experiment execution: replications, comparisons, and sweeps.

Each data point in the paper's figures is the average of ten simulation
runs.  The helpers in this module organise that protocol:

* :func:`run_replications` — run one policy over several seeds and average,
* :func:`compare_policies` — run several policies over the *same* sequence
  of seeds (and, per seed, the same bandwidth assignment) so differences are
  attributable to the policies rather than to the draw of the network,
* :func:`sweep_cache_sizes` — the cache-size sweeps on the x-axis of
  Figures 5, 7, 8, 10, and 11.

All three accept ``n_jobs``: with ``n_jobs > 1`` the independent
``(seed, policy, sweep-point)`` runs fan out over a process pool
(:mod:`repro.analysis.parallel`) with a deterministic seed schedule and
order-stable averaging, so the results are byte-identical to the serial
ones.  Policy factories must then be picklable — use
:class:`~repro.core.policies.registry.PolicySpec` rather than lambdas.
They also accept ``transport`` (``"auto"``/``"shm"``/``"pickle"``), which
controls how the workload reaches the workers: columnar traces travel via
shared memory by default instead of being re-pickled per worker (see
:mod:`repro.trace.shm`).

Every run replays through whichever path
:meth:`~repro.sim.simulator.ProxyCacheSimulator.run` selects for the job's
config — including the columnar event path when the config schedules
periodic bandwidth re-measurement (:mod:`repro.sim.events`); a
:class:`~repro.sim.events.RemeasurementConfig` travels inside the pickled
:class:`~repro.sim.config.SimulationConfig`, so parallel and serial
execution stay byte-identical.  The same holds for fault injection: a
:class:`~repro.sim.faults.FaultConfig` on
:attr:`~repro.sim.config.SimulationConfig.faults` is a frozen, picklable
dataclass whose stochastic episodes are derived from ``(faults.seed,
config.seed)`` inside each worker, so a faulted sweep fans out exactly
like a healthy one (``docs/faults.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.simulator import ProxyCacheSimulator
from repro.workload.gismo import Workload

#: A zero-argument callable producing a fresh policy instance for each run.
PolicyFactory = Callable[[], object]


@dataclass
class PolicyComparison:
    """Averaged metrics per policy, measured on identical workloads/networks."""

    metrics_by_policy: Dict[str, SimulationMetrics] = field(default_factory=dict)

    def policies(self) -> List[str]:
        """Policy names in insertion order."""
        return list(self.metrics_by_policy.keys())

    def metric(self, metric_name: str) -> Dict[str, float]:
        """Extract one metric for every policy, e.g. ``traffic_reduction_ratio``."""
        return {
            policy: getattr(metrics, metric_name)
            for policy, metrics in self.metrics_by_policy.items()
        }

    def best_policy(self, metric_name: str, maximize: bool = True) -> str:
        """Name of the policy with the best value of ``metric_name``."""
        values = self.metric(metric_name)
        chooser = max if maximize else min
        return chooser(values, key=values.get)


@dataclass
class SweepResult:
    """Metrics per policy per swept parameter value (e.g. cache size)."""

    parameter_name: str
    parameter_values: List[float]
    metrics: Dict[str, List[SimulationMetrics]] = field(default_factory=dict)

    def series(self, policy: str, metric_name: str) -> List[float]:
        """The y-values of one policy's curve for one metric."""
        return [getattr(point, metric_name) for point in self.metrics[policy]]

    def policies(self) -> List[str]:
        """Policy names present in the sweep."""
        return list(self.metrics.keys())

    def as_table(self, metric_name: str) -> List[Dict[str, float]]:
        """Rows of ``{parameter, policy_a, policy_b, ...}`` for reporting."""
        rows = []
        for index, value in enumerate(self.parameter_values):
            row: Dict[str, float] = {self.parameter_name: value}
            for policy in self.metrics:
                row[policy] = getattr(self.metrics[policy][index], metric_name)
            rows.append(row)
        return rows


def run_replications(
    workload: Workload,
    policy_factory: PolicyFactory,
    config: SimulationConfig,
    num_runs: int = 10,
    n_jobs: int = 1,
    transport: str = "auto",
) -> SimulationMetrics:
    """Run one policy ``num_runs`` times with different seeds and average."""
    if num_runs <= 0:
        raise ConfigurationError(f"num_runs must be positive, got {num_runs}")
    if n_jobs is not None and n_jobs != 1:
        # Imported lazily: repro.analysis imports this module at package
        # initialisation, so a top-level import would be circular.
        from repro.analysis.parallel import replication_jobs, run_simulation_jobs

        jobs = replication_jobs(config, policy_factory, num_runs, share_topology=False)
        return SimulationMetrics.average(
            run_simulation_jobs(workload, jobs, n_jobs, transport=transport)
        )
    results: List[SimulationMetrics] = []
    for run_index in range(num_runs):
        run_config = config.with_seed(config.seed + run_index)
        simulator = ProxyCacheSimulator(workload, run_config)
        result = simulator.run(policy_factory())
        results.append(result.metrics)
    return SimulationMetrics.average(results)


def compare_policies(
    workload: Workload,
    policy_factories: Mapping[str, PolicyFactory],
    config: SimulationConfig,
    num_runs: int = 3,
    n_jobs: int = 1,
    transport: str = "auto",
) -> PolicyComparison:
    """Run several policies over the same seeds and network assignments.

    For each seed the topology (per-server base bandwidths) is drawn once
    and shared by all policies, so every policy faces exactly the same
    network conditions; the per-request variability draws are also identical
    because each run re-seeds its generator with the same value.  With
    ``n_jobs > 1`` each worker rebuilds the topology deterministically from
    the job's seed, preserving that protocol exactly.
    """
    if not policy_factories:
        raise ConfigurationError("policy_factories must be non-empty")
    if num_runs <= 0:
        raise ConfigurationError(f"num_runs must be positive, got {num_runs}")

    per_policy: Dict[str, List[SimulationMetrics]] = {
        name: [] for name in policy_factories
    }
    if n_jobs is not None and n_jobs != 1:
        from repro.analysis.parallel import SimulationJob, run_simulation_jobs

        jobs = []
        order: List[str] = []
        for run_index in range(num_runs):
            run_config = config.with_seed(config.seed + run_index)
            for name, factory in policy_factories.items():
                jobs.append(
                    SimulationJob(
                        config=run_config,
                        policy_factory=factory,
                        share_topology=True,
                    )
                )
                order.append(name)
        results = run_simulation_jobs(workload, jobs, n_jobs, transport=transport)
        for name, metrics in zip(order, results):
            per_policy[name].append(metrics)
    else:
        for run_index in range(num_runs):
            run_config = config.with_seed(config.seed + run_index)
            simulator = ProxyCacheSimulator(workload, run_config)
            topology = simulator.build_topology(np.random.default_rng(run_config.seed))
            for name, factory in policy_factories.items():
                result = simulator.run(factory(), topology=topology)
                per_policy[name].append(result.metrics)

    comparison = PolicyComparison()
    for name, metrics_list in per_policy.items():
        comparison.metrics_by_policy[name] = SimulationMetrics.average(metrics_list)
    return comparison


def sweep_cache_sizes(
    workload: Workload,
    policy_factories: Mapping[str, PolicyFactory],
    cache_sizes_gb: Sequence[float],
    config: Optional[SimulationConfig] = None,
    num_runs: int = 3,
    n_jobs: int = 1,
    transport: str = "auto",
) -> SweepResult:
    """Sweep the cache size, comparing all policies at each point.

    With ``n_jobs > 1`` the *entire* ``(cache size, seed, policy)`` grid is
    flattened into one job list before fan-out, so parallelism is not capped
    by the number of runs at a single sweep point.
    """
    if not cache_sizes_gb:
        raise ConfigurationError("cache_sizes_gb must be non-empty")
    config = config or SimulationConfig()
    sweep = SweepResult(
        parameter_name="cache_size_gb",
        parameter_values=[float(size) for size in cache_sizes_gb],
        metrics={name: [] for name in policy_factories},
    )
    if n_jobs is not None and n_jobs != 1:
        if not policy_factories:
            raise ConfigurationError("policy_factories must be non-empty")
        if num_runs <= 0:
            raise ConfigurationError(f"num_runs must be positive, got {num_runs}")
        from repro.analysis.parallel import SimulationJob, run_simulation_jobs

        jobs = []
        for cache_size in cache_sizes_gb:
            point_config = config.with_cache_size(cache_size)
            for run_index in range(num_runs):
                run_config = point_config.with_seed(point_config.seed + run_index)
                for factory in policy_factories.values():
                    jobs.append(
                        SimulationJob(
                            config=run_config,
                            policy_factory=factory,
                            share_topology=True,
                        )
                    )
        results = iter(run_simulation_jobs(workload, jobs, n_jobs, transport=transport))
        for _ in cache_sizes_gb:
            per_policy: Dict[str, List[SimulationMetrics]] = {
                name: [] for name in policy_factories
            }
            for _ in range(num_runs):
                for name in policy_factories:
                    per_policy[name].append(next(results))
            for name in policy_factories:
                sweep.metrics[name].append(
                    SimulationMetrics.average(per_policy[name])
                )
        return sweep
    for cache_size in cache_sizes_gb:
        point_config = config.with_cache_size(cache_size)
        comparison = compare_policies(workload, policy_factories, point_config, num_runs)
        for name in policy_factories:
            sweep.metrics[name].append(comparison.metrics_by_policy[name])
    return sweep


def sweep_parameter(
    parameter_name: str,
    parameter_values: Sequence[float],
    run_point: Callable[[float], Dict[str, SimulationMetrics]],
) -> SweepResult:
    """Generic sweep: call ``run_point(value)`` for each parameter value.

    ``run_point`` returns a mapping of policy name to averaged metrics;
    this helper stitches the points into a :class:`SweepResult`.  Used by
    the Zipf-``alpha`` and estimator-``e`` sweeps where the swept parameter
    is not the cache size.
    """
    if not parameter_values:
        raise ConfigurationError("parameter_values must be non-empty")
    sweep = SweepResult(
        parameter_name=parameter_name,
        parameter_values=[float(v) for v in parameter_values],
    )
    for value in parameter_values:
        point = run_point(float(value))
        for policy, metrics in point.items():
            sweep.metrics.setdefault(policy, []).append(metrics)
    return sweep
