"""Models of how a single path's bandwidth varies over time.

Section 3.1 characterises bandwidth variability two ways:

* **NLANR cache logs (Figure 3).**  For each path the sample-to-mean
  bandwidth ratio is computed; about 70% of samples lie within 0.5–1.5 times
  the path mean, with a heavy tail reaching 3x.  The paper notes this is a
  pessimistic (bursty) model because it mixes diurnal time scales and proxy
  load effects.
* **Measured Internet paths (Figure 4).**  Long-running downloads from
  Boston University to servers at INRIA (France), Taiwan, and Hong Kong show
  much lower variability; the magnitude differs per path (INRIA is the
  smoothest) and is quantified by the coefficient of variation of the
  sample-to-mean ratio.

Variability models produce multiplicative *ratios* applied to a path's base
bandwidth.  They expose both i.i.d. sampling (what the simulator uses when a
request observes an instantaneous bandwidth) and time-series generation
(what the Figure 4 reproduction uses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


class BandwidthVariabilityModel:
    """Interface for sample-to-mean bandwidth ratio models."""

    #: Whether one batched ``sample_ratio(rng, size=n)`` call consumes the
    #: generator identically to ``n`` consecutive ``size=1`` calls.  True for
    #: every model in this module (they draw with vectorised numpy samplers,
    #: whose stream consumption is element-sequential).  The simulator's
    #: fast replay path pre-draws all per-request ratios in one batch when
    #: this holds; subclasses whose batched draws consume the generator
    #: differently must set it to False to keep replay results identical to
    #: the per-request event path.
    iid_batch_equivalent: bool = True

    def sample_ratio(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` i.i.d. sample-to-mean ratios (mean ~ 1)."""
        raise NotImplementedError

    def coefficient_of_variation(self) -> float:
        """Standard deviation of the ratio divided by its mean."""
        raise NotImplementedError

    def time_series(
        self,
        duration_hours: float,
        interval_minutes: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return a ratio time series sampled every ``interval_minutes``.

        The default implementation draws i.i.d. ratios; autocorrelated
        models (e.g. :class:`MeasuredPathVariability`) override this.
        """
        if duration_hours <= 0 or interval_minutes <= 0:
            raise ConfigurationError("duration and interval must be positive")
        samples = int(duration_hours * 60.0 / interval_minutes)
        return self.sample_ratio(rng, size=max(samples, 1))


class ConstantVariability(BandwidthVariabilityModel):
    """No variability: every sample equals the path's mean bandwidth.

    This is the "constant bandwidth assumption" under which the paper derives
    its optimal solution (Section 2.3) and runs the Figure 5 experiments.
    """

    def sample_ratio(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return np.ones(size)

    def coefficient_of_variation(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "ConstantVariability()"


class LognormalRatioVariability(BandwidthVariabilityModel):
    """Sample-to-mean ratios drawn from a unit-mean lognormal distribution.

    The lognormal is parameterised by its coefficient of variation, which
    makes it easy to construct models "as variable as" a measured path.  The
    underlying normal parameters are chosen so the ratio's mean is exactly 1.
    """

    def __init__(self, coefficient_of_variation: float, max_ratio: float = 5.0):
        if coefficient_of_variation < 0:
            raise ConfigurationError(
                f"coefficient of variation must be non-negative, got {coefficient_of_variation}"
            )
        if max_ratio <= 0:
            raise ConfigurationError(f"max_ratio must be positive, got {max_ratio}")
        self._cov = float(coefficient_of_variation)
        self.max_ratio = float(max_ratio)
        # For a lognormal with mean 1: sigma^2 = ln(1 + cov^2), mu = -sigma^2/2.
        self._sigma = math.sqrt(math.log(1.0 + self._cov**2)) if self._cov > 0 else 0.0
        self._mu = -self._sigma**2 / 2.0

    def __repr__(self) -> str:
        return f"LognormalRatioVariability(cov={self._cov})"

    def sample_ratio(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        if self._cov == 0:
            return np.ones(size)
        ratios = rng.lognormal(self._mu, self._sigma, size=size)
        return np.clip(ratios, 0.0, self.max_ratio)

    def coefficient_of_variation(self) -> float:
        return self._cov


class NLANRRatioVariability(LognormalRatioVariability):
    """The high-variability sample-to-mean model of Figure 3.

    Calibrated so that roughly 70% of ratios fall in the 0.5–1.5 band
    (the figure the paper quotes) with a tail extending to about 3x the
    mean.  A unit-mean lognormal with a coefficient of variation of 0.60
    satisfies both properties (68% of its mass lies in the band and its
    99th percentile is close to 3).
    """

    #: Coefficient of variation matching Figure 3's published statistics.
    DEFAULT_COV: float = 0.60

    def __init__(self, coefficient_of_variation: float = DEFAULT_COV):
        super().__init__(coefficient_of_variation, max_ratio=4.0)

    def __repr__(self) -> str:
        return f"NLANRRatioVariability(cov={self.coefficient_of_variation()})"


@dataclass(frozen=True)
class MeasuredPathProfile:
    """Summary of one of the paper's measured Internet paths (Figure 4)."""

    name: str
    mean_bandwidth: float
    coefficient_of_variation: float
    autocorrelation: float
    duration_hours: float


#: Profiles of the three measured paths in Figure 4.  The mean bandwidth and
#: relative variability (INRIA smoothest, Taiwan most variable) follow the
#: published time-series plots; exact values are not printed in the paper so
#: these are visual estimates with the right ordering and magnitudes.
MEASURED_PATH_PROFILES: Dict[str, MeasuredPathProfile] = {
    "inria": MeasuredPathProfile(
        name="INRIA, France (138.96.64.17)",
        mean_bandwidth=110.0,
        coefficient_of_variation=0.12,
        autocorrelation=0.85,
        duration_hours=45.0,
    ),
    "taiwan": MeasuredPathProfile(
        name="Taiwan (140.114.71.23)",
        mean_bandwidth=60.0,
        coefficient_of_variation=0.40,
        autocorrelation=0.70,
        duration_hours=40.0,
    ),
    "hongkong": MeasuredPathProfile(
        name="Hong Kong (143.89.40.4)",
        mean_bandwidth=80.0,
        coefficient_of_variation=0.25,
        autocorrelation=0.75,
        duration_hours=30.0,
    ),
}


class MeasuredPathVariability(BandwidthVariabilityModel):
    """Low-variability model matching the measured Internet paths of Fig 4.

    Marginally the sample-to-mean ratio is a unit-mean lognormal with the
    path's coefficient of variation; the time series is generated by an
    AR(1) process in log space so consecutive 4-minute samples are
    correlated, as the published time-series plots clearly are.

    Parameters
    ----------
    path:
        One of ``"inria"``, ``"taiwan"``, ``"hongkong"``, or ``"average"``
        (the mean CoV across the three paths, which is what the Figure 8
        and 11 simulations use as "variation measured from real paths").
    """

    def __init__(self, path: str = "average"):
        key = path.lower()
        if key == "average":
            covs = [p.coefficient_of_variation for p in MEASURED_PATH_PROFILES.values()]
            cov = float(np.mean(covs))
            rho = float(
                np.mean([p.autocorrelation for p in MEASURED_PATH_PROFILES.values()])
            )
            self.profile = MeasuredPathProfile(
                name="average of measured paths",
                mean_bandwidth=float(
                    np.mean([p.mean_bandwidth for p in MEASURED_PATH_PROFILES.values()])
                ),
                coefficient_of_variation=cov,
                autocorrelation=rho,
                duration_hours=40.0,
            )
        elif key in MEASURED_PATH_PROFILES:
            self.profile = MEASURED_PATH_PROFILES[key]
        else:
            raise ConfigurationError(
                f"unknown measured path {path!r}; expected one of "
                f"{sorted(MEASURED_PATH_PROFILES)} or 'average'"
            )
        cov = self.profile.coefficient_of_variation
        self._marginal = LognormalRatioVariability(cov, max_ratio=3.0)
        self._sigma = math.sqrt(math.log(1.0 + cov**2)) if cov > 0 else 0.0
        self._mu = -self._sigma**2 / 2.0

    def __repr__(self) -> str:
        return (
            f"MeasuredPathVariability(path={self.profile.name!r}, "
            f"cov={self.profile.coefficient_of_variation})"
        )

    def sample_ratio(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return self._marginal.sample_ratio(rng, size=size)

    def coefficient_of_variation(self) -> float:
        return self.profile.coefficient_of_variation

    def time_series(
        self,
        duration_hours: float = None,
        interval_minutes: float = 4.0,
        rng: np.random.Generator = None,
    ) -> np.ndarray:
        """AR(1)-correlated ratio series sampled every ``interval_minutes``."""
        if rng is None:
            raise ConfigurationError("an rng must be provided for time_series")
        if duration_hours is None:
            duration_hours = self.profile.duration_hours
        if duration_hours <= 0 or interval_minutes <= 0:
            raise ConfigurationError("duration and interval must be positive")
        samples = max(int(duration_hours * 60.0 / interval_minutes), 1)
        if self._sigma == 0:
            return np.ones(samples)
        rho = self.profile.autocorrelation
        innovations = rng.normal(0.0, 1.0, size=samples)
        log_ratios = np.empty(samples)
        # Start the chain in its stationary distribution.
        log_ratios[0] = self._mu + self._sigma * innovations[0]
        innovation_scale = self._sigma * math.sqrt(1.0 - rho**2)
        for index in range(1, samples):
            log_ratios[index] = (
                self._mu
                + rho * (log_ratios[index - 1] - self._mu)
                + innovation_scale * innovations[index]
            )
        ratios = np.exp(log_ratios)
        return np.clip(ratios, 0.0, 3.0)

    def bandwidth_time_series(
        self,
        duration_hours: float = None,
        interval_minutes: float = 4.0,
        rng: np.random.Generator = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times_hours, bandwidth_kbps)`` as plotted in Figure 4."""
        ratios = self.time_series(duration_hours, interval_minutes, rng)
        times = np.arange(ratios.size) * (interval_minutes / 60.0)
        return times, ratios * self.profile.mean_bandwidth


def empirical_ratio_statistics(ratios: np.ndarray) -> Dict[str, float]:
    """Compute the summary statistics the paper reports about ratio samples.

    Returns the coefficient of variation and the fraction of samples in the
    0.5–1.5 band (the "about 70% of the cases" statement about Figure 3).
    """
    data = np.asarray(ratios, dtype=float)
    if data.size == 0:
        raise ConfigurationError("ratios must be non-empty")
    mean = float(data.mean())
    std = float(data.std())
    in_band = float(np.mean((data >= 0.5) & (data <= 1.5)))
    return {
        "mean": mean,
        "coefficient_of_variation": std / mean if mean > 0 else float("inf"),
        "fraction_in_half_band": in_band,
        "max_ratio": float(data.max()),
    }
