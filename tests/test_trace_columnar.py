"""ColumnarTrace: protocol parity with RequestTrace and replay equivalence.

Three promises are pinned here:

* a :class:`ColumnarTrace` is a drop-in for :class:`RequestTrace` — same
  protocol, same values, lossless conversion in both directions (including
  a hypothesis round-trip property),
* slicing is zero-copy (views share the parent's buffers),
* the simulator produces **bit-identical** metrics whether a workload's
  trace is object-per-request or columnar, on both replay paths, for every
  registered policy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.policies import POLICY_REGISTRY, make_policy
from repro.exceptions import ConfigurationError, TraceFormatError
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import SimulationConfig
from repro.sim.simulator import ProxyCacheSimulator
from repro.trace.columnar import ColumnarTrace
from repro.workload.gismo import GismoWorkloadGenerator, Workload, WorkloadConfig
from repro.workload.trace import Request, RequestTrace


def make_pair():
    times = [0.5, 1.0, 1.0, 2.25, 7.5]
    object_ids = [3, 1, 3, 2, 1]
    client_ids = [0, 1, 0, 2, 1]
    columnar = ColumnarTrace(times, object_ids, client_ids)
    objects = RequestTrace.from_arrays(times, object_ids, client_ids)
    return columnar, objects


class TestProtocolParity:
    def test_len_iter_and_values(self):
        columnar, objects = make_pair()
        assert len(columnar) == len(objects)
        assert list(columnar) == list(objects)
        for request in columnar:
            assert type(request.time) is float
            assert type(request.object_id) is int

    def test_equality_both_directions(self):
        columnar, objects = make_pair()
        assert columnar == objects
        assert objects == columnar
        assert columnar == ColumnarTrace.from_request_trace(objects)
        assert columnar != columnar[1:]

    def test_indexing(self):
        columnar, objects = make_pair()
        assert columnar[0] == objects[0]
        assert columnar[-1] == objects[-1]
        with pytest.raises(IndexError):
            columnar[99]

    def test_slicing_matches_and_is_zero_copy(self):
        columnar, objects = make_pair()
        sliced = columnar[1:4]
        assert isinstance(sliced, ColumnarTrace)
        assert sliced == objects[1:4]
        assert np.shares_memory(sliced.times_array, columnar.times_array)

    def test_bounds_and_counts(self):
        columnar, objects = make_pair()
        assert columnar.duration == objects.duration
        assert columnar.start_time == objects.start_time
        assert columnar.end_time == objects.end_time
        assert columnar.object_ids() == objects.object_ids()
        assert columnar.request_counts() == objects.request_counts()

    def test_split(self):
        columnar, objects = make_pair()
        c_warm, c_measure = columnar.split(0.5)
        o_warm, o_measure = objects.split(0.5)
        assert c_warm == o_warm
        assert c_measure == o_measure
        with pytest.raises(ConfigurationError):
            columnar.split(1.5)

    def test_empty_trace(self):
        empty = ColumnarTrace([], [])
        assert len(empty) == 0
        assert empty.duration == 0.0
        assert empty.object_ids() == []
        assert empty == RequestTrace([])


class TestValidation:
    def test_out_of_order_rejected(self):
        with pytest.raises(ConfigurationError):
            ColumnarTrace([2.0, 1.0], [0, 1])

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            ColumnarTrace([-1.0, 1.0], [0, 1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ColumnarTrace([1.0, 2.0], [1])
        with pytest.raises(ConfigurationError):
            ColumnarTrace([1.0], [1], [1, 2])

    def test_dtypes_are_canonical(self):
        columnar, _ = make_pair()
        assert columnar.times_array.dtype == np.float64
        assert columnar.object_ids_array.dtype == np.int64
        assert columnar.client_ids_array.dtype == np.int32


class TestSerialisation:
    def test_csv_is_byte_identical_to_request_trace(self, tmp_path):
        columnar, objects = make_pair()
        columnar.to_csv(tmp_path / "col.csv")
        objects.to_csv(tmp_path / "obj.csv")
        assert (tmp_path / "col.csv").read_bytes() == (tmp_path / "obj.csv").read_bytes()

    def test_csv_cross_reader_roundtrip(self, tmp_path):
        columnar, objects = make_pair()
        columnar.to_csv(tmp_path / "t.csv")
        assert ColumnarTrace.from_csv(tmp_path / "t.csv") == columnar
        assert RequestTrace.from_csv(tmp_path / "t.csv") == objects

    def test_csv_malformed_numeric_raises_trace_format_error(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,object_id,client_id\n1.0,zap,0\n")
        with pytest.raises(TraceFormatError):
            ColumnarTrace.from_csv(path)
        with pytest.raises(TraceFormatError):
            RequestTrace.from_csv(path)

    def test_csv_out_of_order_raises_trace_format_error_with_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,object_id,client_id\n5.0,1,0\n2.0,2,0\n")
        with pytest.raises(TraceFormatError, match=":3"):
            RequestTrace.from_csv(path)
        with pytest.raises(TraceFormatError, match=":3"):
            ColumnarTrace.from_csv(path)

    def test_csv_non_finite_time_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,object_id,client_id\nnan,1,0\n")
        with pytest.raises(TraceFormatError):
            RequestTrace.from_csv(path)

    def test_npz_roundtrip(self, tmp_path):
        columnar, _ = make_pair()
        columnar.to_npz(tmp_path / "t.npz")
        assert ColumnarTrace.from_npz(tmp_path / "t.npz") == columnar

    def test_npz_missing_column_rejected(self, tmp_path):
        np.savez(tmp_path / "bad.npz", times=np.zeros(2))
        with pytest.raises(TraceFormatError):
            ColumnarTrace.from_npz(tmp_path / "bad.npz")

    def test_npz_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an archive")
        with pytest.raises(TraceFormatError):
            ColumnarTrace.from_npz(path)


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=40,
    )
)
def test_roundtrip_property(rows):
    """ColumnarTrace <-> RequestTrace round-trips are lossless both ways."""
    rows.sort(key=lambda row: row[0])
    requests = [Request(time=t, object_id=o, client_id=c) for t, o, c in rows]
    objects = RequestTrace(requests)
    columnar = ColumnarTrace.from_request_trace(objects)
    assert columnar == objects
    assert columnar.to_request_trace() == objects
    assert ColumnarTrace.from_request_trace(columnar.to_request_trace()) == columnar
    assert ColumnarTrace.from_trace(columnar) is columnar


class TestGismoColumnarMode:
    def test_columnar_output_matches_object_output(self):
        config = WorkloadConfig(seed=5).scaled(0.02)
        object_workload = GismoWorkloadGenerator(config).generate()
        columnar_workload = GismoWorkloadGenerator(config).generate(columnar=True)
        assert isinstance(columnar_workload.trace, ColumnarTrace)
        assert columnar_workload.trace == object_workload.trace
        assert (
            columnar_workload.catalog.total_size == object_workload.catalog.total_size
        )

    def test_describe_works_on_columnar_workloads(self):
        config = WorkloadConfig(seed=5).scaled(0.02)
        workload = GismoWorkloadGenerator(config).generate(columnar=True)
        summary = workload.describe()
        assert summary["requests"] == float(len(workload.trace))


@pytest.fixture(scope="module")
def workload_pair():
    config = WorkloadConfig(seed=7).scaled(0.02)  # 100 objects, 2000 requests
    object_workload = GismoWorkloadGenerator(config).generate()
    columnar_workload = Workload(
        catalog=object_workload.catalog,
        trace=ColumnarTrace.from_request_trace(object_workload.trace),
        config=object_workload.config,
        expected_rates=object_workload.expected_rates,
    )
    return object_workload, columnar_workload


@pytest.mark.parametrize("policy_name", sorted(POLICY_REGISTRY))
def test_columnar_replay_bit_identical_per_policy(workload_pair, policy_name):
    """Event path, object fast path, and columnar fast path all agree."""
    object_workload, columnar_workload = workload_pair
    config = SimulationConfig(
        cache_size_gb=0.5, variability=NLANRRatioVariability(), seed=11
    )
    event = ProxyCacheSimulator(object_workload, config).run(
        make_policy(policy_name), use_fast_path=False
    )
    fast = ProxyCacheSimulator(object_workload, config).run(
        make_policy(policy_name), use_fast_path=True
    )
    columnar = ProxyCacheSimulator(columnar_workload, config).run(
        make_policy(policy_name), use_fast_path=True
    )
    columnar_event = ProxyCacheSimulator(columnar_workload, config).run(
        make_policy(policy_name), use_fast_path=False
    )
    assert fast.as_dict() == event.as_dict()
    assert columnar.as_dict() == event.as_dict()
    assert columnar_event.as_dict() == event.as_dict()


@pytest.mark.parametrize(
    "config_kwargs",
    [
        {"bandwidth_knowledge": "passive"},
        {"warmup_fraction": 0.0},
        {"warmup_fraction": 0.9},
        {"variability": "measured"},
        {"verify_store": True},
    ],
    ids=["passive-estimator", "zero-warmup", "late-warmup", "measured-paths", "verify"],
)
def test_columnar_replay_bit_identical_edge_configs(workload_pair, config_kwargs):
    """The specialized columnar loop agrees under estimator/warmup variants."""
    from repro.network.variability import MeasuredPathVariability
    from repro.sim.config import BandwidthKnowledge

    kwargs = dict(cache_size_gb=0.5, seed=3, variability=NLANRRatioVariability())
    for key, value in config_kwargs.items():
        if value == "passive":
            value = BandwidthKnowledge.PASSIVE
        elif value == "measured":
            value = MeasuredPathVariability("average")
        kwargs[key] = value
    config = SimulationConfig(**kwargs)
    object_workload, columnar_workload = workload_pair
    fast = ProxyCacheSimulator(object_workload, config).run(
        make_policy("PB"), use_fast_path=True
    )
    columnar = ProxyCacheSimulator(columnar_workload, config).run(
        make_policy("PB"), use_fast_path=True
    )
    assert columnar.as_dict() == fast.as_dict()


def test_columnar_replay_bit_identical_sparse_ids():
    """Non-dense object ids fall back to the generic loop, still identical."""
    from repro.workload.catalog import Catalog, MediaObject

    sparse_ids = [10_000_000, 20_000_000, 30_000_000]
    catalog = Catalog(
        MediaObject(object_id=oid, duration=120.0, bitrate=48.0, server_id=i)
        for i, oid in enumerate(sparse_ids)
    )
    times = np.arange(60, dtype=float)
    object_ids = np.array([sparse_ids[i % 3] for i in range(60)], dtype=np.int64)
    base_config = WorkloadConfig(num_objects=3, num_requests=60, num_servers=3)
    object_workload = Workload(
        catalog=catalog,
        trace=RequestTrace.from_arrays(times, object_ids),
        config=base_config,
    )
    columnar_workload = Workload(
        catalog=catalog,
        trace=ColumnarTrace(times, object_ids),
        config=base_config,
    )
    config = SimulationConfig(
        cache_size_gb=0.01, variability=NLANRRatioVariability(), seed=2
    )
    fast = ProxyCacheSimulator(object_workload, config).run(
        make_policy("PB"), use_fast_path=True
    )
    columnar = ProxyCacheSimulator(columnar_workload, config).run(
        make_policy("PB"), use_fast_path=True
    )
    assert columnar.as_dict() == fast.as_dict()
