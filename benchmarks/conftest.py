"""Shared helpers for the benchmark harness.

Each benchmark regenerates one figure or table of the paper at a reduced —
but shape-preserving — scale, times it with pytest-benchmark, prints the
series the paper plots, and attaches the headline numbers to the benchmark's
``extra_info`` so they survive into ``--benchmark-json`` output.

Run with::

    pytest benchmarks/ --benchmark-only -s

(the ``-s`` keeps the printed tables visible).
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.report import render_experiment
from repro.sim.runner import SweepResult

#: Workload scale used by the simulation benchmarks: 1/10 of the paper's
#: volume (500 objects, 10,000 requests), which preserves the qualitative
#: orderings while keeping each benchmark in the seconds range.
BENCH_SCALE: float = 0.1

#: Number of runs averaged per data point (the paper uses ten).
BENCH_RUNS: int = 2

#: Cache sizes, as fractions of the unique object size, used on the x-axis.
BENCH_CACHE_FRACTIONS = (0.005, 0.05, 0.17)

#: Worker processes for the simulation benchmarks: one per CPU, so the
#: full-scale paper protocol (``scale=1.0``, ``num_runs=10``) runs at
#: interactive speed.  Results are byte-identical to serial execution, so
#: the figure assertions are unaffected.
BENCH_JOBS: int = -1


def run_once(benchmark, func, **kwargs) -> ExperimentResult:
    """Execute ``func(**kwargs)`` exactly once under the benchmark timer."""
    return benchmark.pedantic(lambda: func(**kwargs), rounds=1, iterations=1)


def summarize_sweep(sweep: SweepResult, metric: str) -> Dict[str, float]:
    """Flatten the largest-cache point of one metric into ``extra_info`` form."""
    return {
        f"{metric}[{policy}]": sweep.series(policy, metric)[-1]
        for policy in sweep.policies()
    }


def report(benchmark, result: ExperimentResult, extra: Dict[str, float] = None) -> None:
    """Print the experiment's series and attach headline numbers."""
    print()
    print(render_experiment(result))
    info = {"experiment": result.experiment_id}
    if extra:
        info.update({key: round(float(value), 6) for key, value in extra.items()})
    benchmark.extra_info.update(info)


@pytest.fixture
def bench_settings():
    """Expose the shared benchmark scale settings to individual benchmarks."""
    return {
        "scale": BENCH_SCALE,
        "num_runs": BENCH_RUNS,
        "cache_fractions": BENCH_CACHE_FRACTIONS,
        "n_jobs": BENCH_JOBS,
    }
