"""Parallel orchestration determinism and heap-compaction invariants.

Two guarantees are pinned here:

* fanning experiment runs out over worker processes (``n_jobs > 1``) yields
  **exactly** the results of the serial loops — same seeds, same topologies,
  same averaging order, compared with strict equality, and
* the policy priority heap's generation scheme and amortised compaction
  keep the utilities map, the live-entry index, and the heap consistent
  under arbitrary request streams (property-based).
"""

import os
import pickle

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import parallel as parallel_mod
from repro.analysis.parallel import (
    SimulationJob,
    replication_jobs,
    resolve_n_jobs,
    run_simulation_jobs,
)
from repro.core.policies import POLICY_REGISTRY, PolicySpec, make_policy
from repro.core.store import CacheStore
from repro.exceptions import ConfigurationError, SimulationError
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import SimulationConfig
from repro.sim.runner import compare_policies, run_replications, sweep_cache_sizes
from repro.workload.catalog import MediaObject
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

HEADLINE_METRICS = (
    "traffic_reduction_ratio",
    "average_service_delay",
    "average_stream_quality",
    "total_added_value",
    "hit_ratio",
)


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(seed=0).scaled(0.02)  # 100 objects, 2000 requests
    return GismoWorkloadGenerator(config).generate()


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(
        cache_size_gb=0.5, variability=NLANRRatioVariability(), seed=0
    )


# ----------------------------------------------------------------------
# Parallel == serial, exactly.
# ----------------------------------------------------------------------
def test_run_replications_parallel_matches_serial(workload, sim_config):
    serial = run_replications(workload, PolicySpec("PB"), sim_config, num_runs=3)
    parallel = run_replications(
        workload, PolicySpec("PB"), sim_config, num_runs=3, n_jobs=2
    )
    assert parallel == serial


def test_compare_policies_parallel_matches_serial(workload, sim_config):
    factories = {name: PolicySpec(name) for name in ("IF", "PB", "IB-V")}
    serial = compare_policies(workload, factories, sim_config, num_runs=2)
    parallel = compare_policies(workload, factories, sim_config, num_runs=2, n_jobs=4)
    assert serial.policies() == parallel.policies()
    for name in factories:
        assert parallel.metrics_by_policy[name] == serial.metrics_by_policy[name]


def test_sweep_cache_sizes_parallel_is_byte_identical(workload, sim_config):
    factories = {name: PolicySpec(name) for name in ("PB", "IB")}
    sizes = [0.2, 0.6]
    serial = sweep_cache_sizes(workload, factories, sizes, sim_config, num_runs=2)
    parallel = sweep_cache_sizes(
        workload, factories, sizes, sim_config, num_runs=2, n_jobs=4
    )
    assert parallel.parameter_name == serial.parameter_name
    assert parallel.parameter_values == serial.parameter_values
    assert parallel.policies() == serial.policies()
    for metric in HEADLINE_METRICS:
        assert parallel.as_table(metric) == serial.as_table(metric)


def test_jobs_carry_the_serial_seed_schedule(sim_config):
    jobs = replication_jobs(sim_config.with_seed(10), PolicySpec("PB"), num_runs=4)
    assert [job.config.seed for job in jobs] == [10, 11, 12, 13]
    assert not any(job.share_topology for job in jobs)


def test_run_simulation_jobs_preserves_job_order(workload, sim_config):
    jobs = [
        SimulationJob(
            config=sim_config.with_seed(seed),
            policy_factory=PolicySpec("PB"),
            share_topology=True,
        )
        for seed in (0, 1)
    ]
    serial = run_simulation_jobs(workload, jobs, n_jobs=1)
    parallel = run_simulation_jobs(workload, jobs, n_jobs=2)
    assert parallel == serial
    assert serial[0] != serial[1]  # different seeds, different runs


def test_resolve_n_jobs():
    assert resolve_n_jobs(None) == 1
    assert resolve_n_jobs(1) == 1
    assert resolve_n_jobs(3) == 3
    assert resolve_n_jobs(-1) >= 1
    assert resolve_n_jobs(0) == resolve_n_jobs(-1)
    with pytest.raises(ConfigurationError):
        resolve_n_jobs(-2)


class _CrashOnceFactory:
    """Picklable factory that hard-kills the first worker to call it.

    The sentinel file marks that the crash already happened, so the retry
    pool's workers build a normal PB policy — simulating a transient
    worker death (OOM kill) that a single respawn recovers from.
    """

    def __init__(self, sentinel: str):
        self.sentinel = sentinel

    def __call__(self):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os._exit(1)
        return make_policy("PB")


class _CrashAlwaysFactory:
    """Picklable factory that hard-kills every worker that calls it."""

    def __call__(self):  # pragma: no cover - dies before returning
        os._exit(1)


def test_worker_crash_is_retried_once_on_a_fresh_pool(
    workload, sim_config, tmp_path, monkeypatch
):
    monkeypatch.setattr(parallel_mod, "_RETRY_BACKOFF_S", 0.0)
    crashing = replication_jobs(
        sim_config, _CrashOnceFactory(str(tmp_path / "crashed")), num_runs=3
    )
    survived = run_simulation_jobs(workload, crashing, n_jobs=2)
    baseline = run_simulation_jobs(
        workload, replication_jobs(sim_config, PolicySpec("PB"), num_runs=3), n_jobs=1
    )
    # The sweep survives the crash and still matches the serial results
    # exactly — retried jobs rerun with their original seeds.
    assert survived == baseline


def test_jobs_crashing_twice_abort_with_their_indices(
    workload, sim_config, monkeypatch
):
    monkeypatch.setattr(parallel_mod, "_RETRY_BACKOFF_S", 0.0)
    jobs = replication_jobs(sim_config, _CrashAlwaysFactory(), num_runs=2)
    with pytest.raises(SimulationError, match="worker crashes"):
        run_simulation_jobs(workload, jobs, n_jobs=2)


def test_job_raised_exceptions_propagate_without_retry(
    workload, sim_config, monkeypatch
):
    """Deterministic job errors must not be retried (they would just repeat)."""
    attempts = []
    real_run_pool = parallel_mod._run_pool

    def counting_run_pool(jobs, workers, initializer, initargs, execute):
        attempts.append(len(jobs))
        return real_run_pool(jobs, workers, initializer, initargs, execute)

    monkeypatch.setattr(parallel_mod, "_run_pool", counting_run_pool)
    bad_config = sim_config  # valid config; the factory itself raises
    jobs = [
        SimulationJob(config=bad_config, policy_factory=_RaisingFactory())
        for _ in range(2)
    ]
    with pytest.raises(RuntimeError, match="deterministic failure"):
        run_simulation_jobs(workload, jobs, n_jobs=2)
    assert attempts == [2]  # one pool, no retry


class _RaisingFactory:
    """Picklable factory that raises (worker survives, future errors)."""

    def __call__(self):
        raise RuntimeError("deterministic failure")


def test_policy_spec_is_picklable_and_equivalent():
    for name in POLICY_REGISTRY:
        spec = pickle.loads(pickle.dumps(PolicySpec(name)))
        assert type(spec()) is type(make_policy(name))
    hybrid = pickle.loads(pickle.dumps(PolicySpec("PB", estimator_e=0.4)))
    assert hybrid().estimator_e == 0.4


# ----------------------------------------------------------------------
# Heap-compaction invariants (property-based).
# ----------------------------------------------------------------------
def _check_heap_invariants(policy, store):
    # Store accounting is sound and mirrors the policy's utility map.
    assert store.verify_consistency()
    assert set(policy._utilities) == set(store.object_ids())
    # Every live-entry pointer refers to a tracked object.
    assert set(policy._entry_seq) <= set(policy._utilities)
    # Each tracked-live object has exactly one live heap entry, and that
    # entry's key equals the utilities map.
    live_seen = {}
    for utility, seq, object_id in policy._heap:
        if policy._entry_seq.get(object_id) == seq:
            assert object_id not in live_seen
            live_seen[object_id] = utility
    assert set(live_seen) == set(policy._entry_seq)
    for object_id, utility in live_seen.items():
        assert policy._utilities[object_id] == utility
    # Compaction bounds the heap: at most ~50% stale entries plus slack.
    assert len(policy._heap) <= 2 * len(policy._entry_seq) + policy._COMPACTION_SLACK + 2


@settings(max_examples=60, deadline=None)
@given(
    policy_name=st.sampled_from(sorted(POLICY_REGISTRY)),
    stream=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=19),
            st.floats(min_value=1.0, max_value=200.0),
        ),
        max_size=120,
    ),
)
def test_heap_and_utilities_stay_consistent(policy_name, stream):
    objects = [
        MediaObject(
            object_id=i,
            duration=30.0 + 7.0 * i,
            bitrate=48.0,
            server_id=i % 3,
            value=1.0 + (i % 5),
        )
        for i in range(20)
    ]
    policy = make_policy(policy_name)
    store = CacheStore(capacity_kb=4_000.0)
    now = 0.0
    for object_index, bandwidth in stream:
        now += 1.0
        policy.on_request(objects[object_index], bandwidth, now, store)
        _check_heap_invariants(policy, store)


def test_held_requester_entry_survives_blocked_eviction():
    """Regression: the requester's heap entry must survive a blocked plan.

    When the requester itself has the lowest utility, the eviction loop pops
    its held-aside entry off the heap; a blocked early return must reinstate
    it (same sequence number, same position) so the object remains evictable
    by later, higher-utility requests.
    """
    cold = MediaObject(object_id=1, duration=100.0, bitrate=10.0)  # 1000 KB
    hot = MediaObject(object_id=2, duration=100.0, bitrate=10.0)
    mid = MediaObject(object_id=3, duration=100.0, bitrate=10.0)
    policy = make_policy("PB")  # partial; utility F/b, target (r - b) T
    store = CacheStore(capacity_kb=1_000.0)
    # Fill the cache: cold caches 500 KB (utility 1/5), hot caches 500 KB
    # and is re-requested to utility 5/5 = 1.0.
    policy.on_request(cold, 5.0, 0.0, store)
    for step in range(5):
        policy.on_request(hot, 5.0, 1.0 + step, store)
    assert store.cached_bytes(1) == 500.0 and store.cached_bytes(2) == 500.0
    # cold re-requests on a slower path: target grows to 600 KB, utility
    # refreshes to 2/4 = 0.5 — the heap minimum — and the eviction plan is
    # blocked by hot (1.0).  The loop pops cold's own entry before hot's.
    policy.on_request(cold, 4.0, 10.0, store)
    _check_heap_invariants(policy, store)
    assert store.cached_bytes(1) == 500.0  # unchanged, still tracked
    # mid's frequency climbs past cold's utility: it must evict cold.
    for step in range(3):
        policy.on_request(mid, 5.0, 20.0 + step, store)
        _check_heap_invariants(policy, store)
    assert store.cached_bytes(3) == 500.0
    assert store.cached_bytes(1) == 0.0


def test_compaction_bounds_heap_under_repeated_refreshes():
    """Re-keying one hot object forever must not grow the heap unboundedly."""
    obj = MediaObject(object_id=0, duration=60.0, bitrate=48.0)
    policy = make_policy("LFU")
    store = CacheStore(capacity_kb=10_000.0)
    for step in range(5_000):
        policy.on_request(obj, 10.0, float(step), store)
    stats = policy.heap_statistics()
    assert stats["live_entries"] == 1
    assert stats["size"] <= 2 * 1 + policy._COMPACTION_SLACK + 1
    assert stats["compactions"] > 0
    assert stats["peak_size"] <= 2 * 1 + policy._COMPACTION_SLACK + 1
