"""A small discrete-event simulation engine.

The paper's evaluation is a trace-driven simulation: request events arrive
at known times and are processed in order.  The engine below is a classic
event-calendar design — a priority queue of timestamped events, a clock that
only moves forward, and handlers that may schedule further events — which
keeps the trace-driven simulator honest about time ordering and gives
extensions (delayed prefetch completion, cache-consistency timers) a
natural place to hook in.  Periodic bandwidth re-measurement — the first
shipped consumer — lives in :mod:`repro.sim.events`, whose typed events run
either on this engine or on the simulator's columnar event loop with
identical ordering.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.exceptions import SimulationError


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled event.

    Events order by ``(time, priority, sequence)``: ties in time are broken
    by explicit priority (lower runs first) and then by scheduling order, so
    simulations are fully deterministic.  ``__slots__`` keeps the per-event
    footprint small: a trace replay allocates one of these per request on
    the event-calendar path.
    """

    time: float
    priority: int
    sequence: int
    handler: Callable[["SimulationEngine", Any], None] = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        time: float,
        handler: Callable[["SimulationEngine", Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule an event and return it (so it can be cancelled)."""
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            handler=handler,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Cancel every outstanding event and empty the queue in place."""
        for event in self._heap:
            event.cancelled = True
        self._heap.clear()


class SimulationEngine:
    """Run events in time order, advancing a monotonically increasing clock."""

    def __init__(self, start_time: float = 0.0):
        self.queue = EventQueue()
        self.now = float(start_time)
        self.events_processed = 0
        self._running = False

    def schedule(
        self,
        time: float,
        handler: Callable[["SimulationEngine", Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``handler(engine, payload)`` to run at simulation ``time``.

        Scheduling in the past raises :class:`~repro.exceptions.SimulationError`
        — the clock never moves backwards.
        """
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        return self.queue.push(max(time, self.now), handler, payload, priority)

    def schedule_after(
        self,
        delay: float,
        handler: Callable[["SimulationEngine", Any], None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule an event ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, handler, payload, priority)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains (or a limit is reached).

        Parameters
        ----------
        until:
            Stop once the next event's time exceeds this value (the clock is
            left at ``until``).
        max_events:
            Stop after processing this many events (a safety valve for
            handler bugs that re-schedule themselves forever).

        Returns
        -------
        int
            The number of events processed by this call.
        """
        processed = 0
        self._running = True
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                event = self.queue.pop()
                if event is None:
                    break
                self.now = event.time
                event.handler(self, event.payload)
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        return processed

    def stop(self) -> None:
        """Request the run loop to stop by draining the queue.

        Handlers call this to terminate a simulation early; all outstanding
        events are cancelled (so holders of an :class:`Event` reference can
        observe the cancellation) and the queue is emptied in one O(n) pass.
        """
        self.queue.clear()
