"""Parallel experiment orchestration.

Every data point in the paper's figures averages several independent
simulation runs, and the sweeps multiply that by policies and cache sizes —
an embarrassingly parallel grid of ``(seed, policy, sweep-point)`` jobs.
This module fans those jobs out over a :class:`~concurrent.futures.
ProcessPoolExecutor` while keeping the results **deterministic**: each job
carries its own fully-resolved :class:`~repro.sim.config.SimulationConfig`
(seed included), results are re-assembled in submission order, and averages
are computed in exactly the order the serial loops use — so ``n_jobs=4``
produces byte-identical tables to ``n_jobs=1``.

Design notes
------------
* The (potentially large) workload is shipped to each worker **once**, via
  the executor's initializer, rather than being pickled into every job.
* Jobs that share a topology (policy comparisons) rebuild it inside the
  worker from the job's seed — bandwidth assignment is a deterministic
  function of the seed, so every policy still faces identical network
  conditions without any cross-process coordination.
* Policy factories must be picklable for ``n_jobs > 1``; use
  :class:`~repro.core.policies.registry.PolicySpec` instead of lambdas.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.simulator import ProxyCacheSimulator
from repro.workload.gismo import Workload


@dataclass(frozen=True)
class SimulationJob:
    """One fully-specified simulation run.

    Attributes
    ----------
    config:
        The run's configuration with its *final* seed and cache size — seed
        assignment happens when the job grid is built, never inside a
        worker, so the schedule is independent of execution order.
    policy_factory:
        Zero-argument callable producing a fresh policy instance.  Must be
        picklable when the job is executed in a worker process.
    share_topology:
        When True the worker pre-builds the topology from a dedicated
        generator seeded with ``config.seed`` (the protocol
        :func:`~repro.sim.runner.compare_policies` uses so every policy sees
        identical bandwidth assignments); when False the simulator draws the
        topology inside :meth:`~repro.sim.simulator.ProxyCacheSimulator.run`
        (the :func:`~repro.sim.runner.run_replications` protocol).
    """

    config: SimulationConfig
    policy_factory: Callable[[], object]
    share_topology: bool = True


#: Workload installed in each worker process by the pool initializer.
_WORKER_WORKLOAD: Optional[Workload] = None


def _init_worker(workload: Workload) -> None:
    global _WORKER_WORKLOAD
    _WORKER_WORKLOAD = workload


def _execute_job(job: SimulationJob) -> SimulationMetrics:
    """Run one job against the worker's installed workload."""
    workload = _WORKER_WORKLOAD
    if workload is None:  # pragma: no cover - defensive
        raise ConfigurationError("worker has no workload installed")
    simulator = ProxyCacheSimulator(workload, job.config)
    topology = None
    if job.share_topology:
        topology = simulator.build_topology(np.random.default_rng(job.config.seed))
    result = simulator.run(job.policy_factory(), topology=topology)
    return result.metrics


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` argument to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` (or ``0``) means one worker per
    available CPU; positive values are taken as-is.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs in (0, -1):
        return max(os.cpu_count() or 1, 1)
    if n_jobs < -1:
        raise ConfigurationError(f"n_jobs must be >= -1, got {n_jobs}")
    return n_jobs


def run_simulation_jobs(
    workload: Workload,
    jobs: Sequence[SimulationJob],
    n_jobs: Optional[int] = 1,
) -> List[SimulationMetrics]:
    """Execute a grid of simulation jobs, serially or on a process pool.

    Results are returned in job order regardless of completion order, so
    any downstream averaging is order-stable and the output is independent
    of ``n_jobs``.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    workers = min(resolve_n_jobs(n_jobs), len(jobs))
    if workers <= 1:
        global _WORKER_WORKLOAD
        previous = _WORKER_WORKLOAD
        _init_worker(workload)
        try:
            return [_execute_job(job) for job in jobs]
        finally:
            _WORKER_WORKLOAD = previous
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(workload,)
    ) as executor:
        return list(executor.map(_execute_job, jobs))


def replication_jobs(
    config: SimulationConfig,
    policy_factory: Callable[[], object],
    num_runs: int,
    share_topology: bool = False,
) -> List[SimulationJob]:
    """The deterministic seed schedule of a replication experiment.

    Run ``i`` uses seed ``config.seed + i`` — the same assignment the serial
    loops use, so parallel execution replays the identical experiment.
    """
    if num_runs <= 0:
        raise ConfigurationError(f"num_runs must be positive, got {num_runs}")
    return [
        SimulationJob(
            config=config.with_seed(config.seed + run_index),
            policy_factory=policy_factory,
            share_topology=share_topology,
        )
        for run_index in range(num_runs)
    ]
