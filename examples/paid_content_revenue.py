#!/usr/bin/env python
"""Scenario: a paid-content provider maximising revenue with its edge cache.

Section 2.6 of the paper considers a cache whose objective is not delay but
*revenue*: each stream has a value, and the value is only earned when the
stream can start immediately at full quality.  This script reproduces that
setting:

* every object carries a value drawn uniformly from $1-$10,
* the cache compares the frequency-only IF policy against the value-aware
  PB-V and IB-V policies, and against the hybrid PB-V(e) family that
  deliberately under-estimates bandwidth,
* the report shows total added value and traffic reduction side by side,
  under realistic (measured-path) bandwidth variability.

Run with::

    python examples/paid_content_revenue.py
"""

from __future__ import annotations

from repro import (
    GismoWorkloadGenerator,
    MeasuredPathVariability,
    ProxyCacheSimulator,
    SimulationConfig,
    WorkloadConfig,
    make_policy,
)


def run(workload, config, policy):
    return ProxyCacheSimulator(workload, config).run(policy).metrics


def main() -> None:
    workload = GismoWorkloadGenerator(WorkloadConfig(seed=5).scaled(0.1)).generate()
    config = SimulationConfig(
        cache_size_gb=0.05 * workload.catalog.total_size_gb,
        variability=MeasuredPathVariability("average"),
        seed=17,
    )
    # The maximum earnable value: every measured request served immediately.
    total_possible = sum(
        workload.catalog.get(request.object_id).value
        for request in list(workload.trace)[len(workload.trace) // 2:]
    )

    print("Paid-content revenue study "
          f"(cache {config.cache_size_gb:.1f} GB, measured-path variability)")
    print(f"maximum earnable value over the measured half: ${total_possible:,.0f}\n")

    header = f"{'policy':12} {'added value ($)':>16} {'% of maximum':>13} {'traffic reduction':>18}"
    print(header)
    print("-" * len(header))

    named_policies = [
        ("IF", make_policy("IF")),
        ("IB-V", make_policy("IB-V")),
        ("PB-V", make_policy("PB-V")),
        ("PB-V(e=0.7)", make_policy("PB-V", estimator_e=0.7)),
        ("PB-V(e=0.5)", make_policy("PB-V", estimator_e=0.5)),
        ("PB-V(e=0.3)", make_policy("PB-V", estimator_e=0.3)),
    ]
    results = {}
    for label, policy in named_policies:
        metrics = run(workload, config, policy)
        results[label] = metrics
        print(
            f"{label:12} {metrics.total_added_value:16,.0f} "
            f"{metrics.total_added_value / total_possible:13.1%} "
            f"{metrics.traffic_reduction_ratio:18.3f}"
        )

    best = max(results, key=lambda label: results[label].total_added_value)
    print(f"\nBest revenue: {best}.")
    print("The paper's Figure 12 finding is that a moderately conservative bandwidth")
    print("estimate (e around 0.5) earns the most: it caches prefixes large enough to")
    print("survive bandwidth dips without collapsing to whole-object caching.")


if __name__ == "__main__":
    main()
