PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-full bench-figures ingest-demo docs-check

## Tier-1 verification: the full test + benchmark suite.
test:
	$(PYTHON) -m pytest -x -q

## Quick throughput regression gate: replays a small (20k-request) trace on
## the fast path and fails if it is >30% slower than the baseline recorded
## in BENCH_perf.json.
bench-smoke:
	$(PYTHON) -m pytest -q benchmarks/test_bench_perf_throughput.py -k smoke

## Full throughput measurement: 200k-request replay on both paths,
## rewrites BENCH_perf.json (the repo's performance trajectory).
bench-full:
	$(PYTHON) -m pytest -q benchmarks/test_bench_perf_throughput.py

## The paper-figure benchmarks (pytest-benchmark timings, printed tables).
bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## Ingest the bundled sample access logs through the CLI: summary + a
## policy comparison on the Squid log, summary only for the CLF log.
ingest-demo:
	$(PYTHON) -m repro ingest examples/data/sample_squid.log --compare --policies PB,IB,LRU --runs 1
	$(PYTHON) -m repro ingest examples/data/sample_clf.log

## Documentation gate: link-check README.md + docs/*.md and execute the
## README quickstart and docs/clients.md worked-example snippets.
docs-check:
	$(PYTHON) scripts/check_docs.py
