"""Parallel experiment orchestration.

Every data point in the paper's figures averages several independent
simulation runs, and the sweeps multiply that by policies and cache sizes —
an embarrassingly parallel grid of ``(seed, policy, sweep-point)`` jobs.
This module fans those jobs out over a :class:`~concurrent.futures.
ProcessPoolExecutor` while keeping the results **deterministic**: each job
carries its own fully-resolved :class:`~repro.sim.config.SimulationConfig`
(seed included), results are re-assembled in submission order, and averages
are computed in exactly the order the serial loops use — so ``n_jobs=4``
produces byte-identical tables to ``n_jobs=1``.

Design notes
------------
* The (potentially large) workload is shipped to each worker **once**, via
  the executor's initializer, rather than being pickled into every job.
* When the workload carries a :class:`~repro.trace.columnar.ColumnarTrace`
  (or ``transport="shm"`` forces a conversion), the trace is published once
  into POSIX shared memory (:mod:`repro.trace.shm`) and workers attach
  zero-copy by name — the initializer then pickles only the catalog and a
  tiny descriptor, so fan-out cost no longer scales with trace length.
  The segment is unlinked in a ``finally`` even when workers crash, and the
  transport silently falls back to pickling when shared memory is
  unavailable.
* Jobs that share a topology (policy comparisons) rebuild it inside the
  worker from the job's seed — bandwidth assignment is a deterministic
  function of the seed, so every policy still faces identical network
  conditions without any cross-process coordination.
* Policy factories must be picklable for ``n_jobs > 1``; use
  :class:`~repro.core.policies.registry.PolicySpec` instead of lambdas.
* A worker crash (OOM kill, segfault) breaks the whole pool and fails every
  in-flight future collectively; rather than losing the sweep, the crashed
  jobs are retried **once** on a fresh pool after a jittered backoff, and
  only jobs that crash twice abort the sweep — with their indices named in
  the error.  Job-raised exceptions still propagate immediately: those are
  deterministic, and a retry would only repeat them.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.simulator import ProxyCacheSimulator
from repro.trace.columnar import ColumnarTrace
from repro.trace.shm import (
    SharedTraceDescriptor,
    attach_trace,
    publish_trace,
    shm_available,
)
from repro.workload.gismo import Workload

#: Accepted values of the ``transport`` argument of
#: :func:`run_simulation_jobs`.
TRANSPORTS = ("auto", "shm", "pickle")

#: Below this trace payload size, ``transport="auto"`` pickles instead of
#: publishing to shared memory: for small traces the segment create/copy/
#: attach round-trip costs more than the pickling it saves.  4 MiB is about
#: a 200k-request trace.  ``transport="shm"`` forces shared memory at any
#: size.
SHM_MIN_TRACE_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class SimulationJob:
    """One fully-specified simulation run.

    Attributes
    ----------
    config:
        The run's configuration with its *final* seed and cache size — seed
        assignment happens when the job grid is built, never inside a
        worker, so the schedule is independent of execution order.
    policy_factory:
        Zero-argument callable producing a fresh policy instance.  Must be
        picklable when the job is executed in a worker process.
    share_topology:
        When True the worker pre-builds the topology from a dedicated
        generator seeded with ``config.seed`` (the protocol
        :func:`~repro.sim.runner.compare_policies` uses so every policy sees
        identical bandwidth assignments); when False the simulator draws the
        topology inside :meth:`~repro.sim.simulator.ProxyCacheSimulator.run`
        (the :func:`~repro.sim.runner.run_replications` protocol).
    """

    config: SimulationConfig
    policy_factory: Callable[[], object]
    share_topology: bool = True


#: Workload installed in each worker process by the pool initializer.
_WORKER_WORKLOAD: Optional[Workload] = None


def _init_worker(workload: Workload) -> None:
    global _WORKER_WORKLOAD
    _WORKER_WORKLOAD = workload


def _init_worker_shm(
    catalog,
    config,
    expected_rates,
    descriptor: SharedTraceDescriptor,
) -> None:
    """Pool initializer for the shared-memory transport.

    Receives everything *except* the trace by pickle and attaches to the
    published trace by name; the reconstructed workload's trace columns are
    zero-copy views on the shared block, which the trace's owner reference
    keeps mapped for the worker's lifetime.
    """
    global _WORKER_WORKLOAD
    _WORKER_WORKLOAD = Workload(
        catalog=catalog,
        trace=attach_trace(descriptor),
        config=config,
        expected_rates=expected_rates,
    )


def _execute_job(job: SimulationJob) -> SimulationMetrics:
    """Run one job against the worker's installed workload."""
    workload = _WORKER_WORKLOAD
    if workload is None:  # pragma: no cover - defensive
        raise ConfigurationError("worker has no workload installed")
    simulator = ProxyCacheSimulator(workload, job.config)
    topology = None
    if job.share_topology:
        topology = simulator.build_topology(np.random.default_rng(job.config.seed))
    result = simulator.run(job.policy_factory(), topology=topology)
    return result.metrics


#: Base pause (seconds) before respawning a pool after a worker crash; the
#: actual wait is jittered to ``[1x, 2x)`` of this.
_RETRY_BACKOFF_S = 0.5


def _run_pool(
    jobs: Sequence[SimulationJob],
    workers: int,
    initializer: Callable,
    initargs: tuple,
) -> Tuple[Dict[int, SimulationMetrics], List[int]]:
    """Run jobs on one process pool, absorbing worker-crash failures.

    Returns ``(results_by_index, crashed_indices)``.  A crashed worker
    breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`
    (every in-flight future fails with :class:`BrokenProcessPool`), so the
    crashed indices are collected for the caller to retry instead of
    aborting the sweep.  Ordinary exceptions raised *by a job* (a
    misconfigured simulation, say) propagate unchanged — those are
    deterministic and retrying cannot fix them.
    """
    results: Dict[int, SimulationMetrics] = {}
    crashed: List[int] = []
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as executor:
        try:
            futures = [executor.submit(_execute_job, job) for job in jobs]
        except BrokenProcessPool:
            # The pool died during submission (initializer crash): nothing
            # ran, everything is retryable.
            return results, list(range(len(jobs)))
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                crashed.append(index)
    return results, crashed


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` argument to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` (or ``0``) means one worker per
    available CPU; positive values are taken as-is.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs in (0, -1):
        return max(os.cpu_count() or 1, 1)
    if n_jobs < -1:
        raise ConfigurationError(f"n_jobs must be >= -1, got {n_jobs}")
    return n_jobs


def run_simulation_jobs(
    workload: Workload,
    jobs: Sequence[SimulationJob],
    n_jobs: Optional[int] = 1,
    transport: str = "auto",
) -> List[SimulationMetrics]:
    """Execute a grid of simulation jobs, serially or on a process pool.

    Results are returned in job order regardless of completion order, so
    any downstream averaging is order-stable and the output is independent
    of ``n_jobs`` and ``transport``.

    ``transport`` selects how the workload reaches the workers:

    * ``"auto"`` (default) — shared memory when the trace is columnar, at
      least :data:`SHM_MIN_TRACE_BYTES` big, and the platform supports it;
      pickling otherwise;
    * ``"shm"`` — force shared memory, converting an object trace to
      columnar first (raises if shared memory is unusable);
    * ``"pickle"`` — always pickle the whole workload into the pool
      initializer (the pre-shm behaviour).
    """
    if transport not in TRANSPORTS:
        raise ConfigurationError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == "shm" and not shm_available():
        # Checked before the serial shortcut so the contract holds for
        # every worker count, not only when a pool is actually spawned.
        raise ConfigurationError(
            "transport='shm' requested but multiprocessing.shared_memory "
            "is unavailable on this platform"
        )
    jobs = list(jobs)
    if not jobs:
        return []
    workers = min(resolve_n_jobs(n_jobs), len(jobs))
    if workers <= 1:
        global _WORKER_WORKLOAD
        previous = _WORKER_WORKLOAD
        _init_worker(workload)
        try:
            return [_execute_job(job) for job in jobs]
        finally:
            _WORKER_WORKLOAD = previous

    shared = None
    if shm_available() and (
        transport == "shm"
        or (
            transport == "auto"
            and isinstance(workload.trace, ColumnarTrace)
            and workload.trace.nbytes >= SHM_MIN_TRACE_BYTES
        )
    ):
        try:
            shared = publish_trace(ColumnarTrace.from_trace(workload.trace))
        except (OSError, ConfigurationError):
            if transport == "shm":
                raise
            shared = None  # auto: fall back to pickling the workload

    if shared is not None:
        initializer, initargs = _init_worker_shm, (
            workload.catalog,
            workload.config,
            workload.expected_rates,
            shared.descriptor,
        )
    else:
        initializer, initargs = _init_worker, (workload,)
    try:
        results, broken = _run_pool(jobs, workers, initializer, initargs)
        if broken:
            # A worker process died (OOM kill, segfault, machine hiccup)
            # and took the whole pool with it — every job still in flight
            # failed collectively, not individually.  One deliberate retry
            # on a fresh pool salvages the sweep from a transient crash;
            # the jittered pause keeps respawned workers from slamming
            # into the same memory spike in lockstep.
            time.sleep(_RETRY_BACKOFF_S * (1.0 + random.random()))
            retried, still_broken = _run_pool(
                [jobs[index] for index in broken],
                min(workers, len(broken)),
                initializer,
                initargs,
            )
            for position, index in enumerate(broken):
                if position in retried:
                    results[index] = retried[position]
            if still_broken:
                failed = sorted(broken[position] for position in still_broken)
                raise SimulationError(
                    f"{len(failed)} of {len(jobs)} simulation jobs lost to "
                    f"worker crashes even after a retry on a fresh pool "
                    f"(job indices {failed[:10]}"
                    + ("..." if len(failed) > 10 else "")
                    + "); the workload may not fit the configured worker count"
                )
        return [results[index] for index in range(len(jobs))]
    finally:
        # Guaranteed reclamation of the shared segment, including when a
        # worker died mid-job and both pool attempts above raised.
        if shared is not None:
            shared.unlink()


def replication_jobs(
    config: SimulationConfig,
    policy_factory: Callable[[], object],
    num_runs: int,
    share_topology: bool = False,
) -> List[SimulationJob]:
    """The deterministic seed schedule of a replication experiment.

    Run ``i`` uses seed ``config.seed + i`` — the same assignment the serial
    loops use, so parallel execution replays the identical experiment.
    """
    if num_runs <= 0:
        raise ConfigurationError(f"num_runs must be positive, got {num_runs}")
    return [
        SimulationJob(
            config=config.with_seed(config.seed + run_index),
            policy_factory=policy_factory,
            share_topology=share_topology,
        )
        for run_index in range(num_runs)
    ]
