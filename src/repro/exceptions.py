"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries while the library keeps the
distinct failure modes separate internally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object (workload, simulation, policy) is invalid."""


class CapacityError(ReproError):
    """An operation would violate the cache's capacity constraint."""


class UnknownObjectError(ReproError, KeyError):
    """A media object id was referenced that is not in the catalog."""


class TraceFormatError(ReproError):
    """A request trace file could not be parsed."""


class MeasurementError(ReproError):
    """A bandwidth measurement could not be carried out or is unusable."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class PolicyError(ReproError):
    """A cache policy was asked to do something inconsistent with its state."""
