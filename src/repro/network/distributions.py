"""Distributions of base (average) path bandwidth.

Section 3.1 of the paper derives the distribution of available bandwidth
across cache-to-server paths from NLANR proxy cache logs (Figure 2): the
distribution is highly heterogeneous, with 37% of transfers below 50 KB/s,
56% below 100 KB/s, and a long tail reaching about 450 KB/s.  The simulation
assigns each origin server a base bandwidth drawn from this distribution.

:class:`NLANRBandwidthDistribution` encodes the published summary of Fig 2
as a piecewise-uniform histogram.  :class:`EmpiricalBandwidthDistribution`
builds the same kind of model from raw samples (for example samples produced
by :mod:`repro.network.loganalysis`), and simpler distributions are provided
for ablations and tests.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


class BandwidthDistribution:
    """Interface: a distribution over base path bandwidth in KB/s."""

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` bandwidth values (KB/s)."""
        raise NotImplementedError

    def mean(self) -> float:
        """Mean bandwidth (KB/s)."""
        raise NotImplementedError

    def cdf(self, bandwidth: float) -> float:
        """Return ``P[B <= bandwidth]``."""
        raise NotImplementedError


class ConstantBandwidthDistribution(BandwidthDistribution):
    """Every path has the same bandwidth (degenerate distribution)."""

    def __init__(self, bandwidth: float):
        if bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = float(bandwidth)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(size, self.bandwidth)

    def mean(self) -> float:
        return self.bandwidth

    def cdf(self, bandwidth: float) -> float:
        return 1.0 if bandwidth >= self.bandwidth else 0.0


class UniformBandwidthDistribution(BandwidthDistribution):
    """Bandwidth uniform on ``[low, high]`` KB/s."""

    def __init__(self, low: float, high: float):
        if low < 0 or high <= low:
            raise ConfigurationError(f"invalid range [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def cdf(self, bandwidth: float) -> float:
        if bandwidth <= self.low:
            return 0.0
        if bandwidth >= self.high:
            return 1.0
        return (bandwidth - self.low) / (self.high - self.low)


class HistogramBandwidthDistribution(BandwidthDistribution):
    """Piecewise-uniform distribution defined by bin edges and masses."""

    def __init__(self, bin_edges: Sequence[float], bin_masses: Sequence[float]):
        edges = np.asarray(list(bin_edges), dtype=float)
        masses = np.asarray(list(bin_masses), dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ConfigurationError("bin_edges must contain at least two edges")
        if np.any(np.diff(edges) <= 0):
            raise ConfigurationError("bin_edges must be strictly increasing")
        if masses.size != edges.size - 1:
            raise ConfigurationError(
                f"expected {edges.size - 1} bin masses, got {masses.size}"
            )
        if np.any(masses < 0) or masses.sum() <= 0:
            raise ConfigurationError("bin masses must be non-negative and sum to > 0")
        if edges[0] < 0:
            raise ConfigurationError("bandwidth bins must be non-negative")
        self.bin_edges = edges
        self.bin_masses = masses / masses.sum()
        self._cumulative = np.concatenate([[0.0], np.cumsum(self.bin_masses)])

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if size < 0:
            raise ConfigurationError(f"size must be non-negative, got {size}")
        bins = rng.choice(self.bin_masses.size, size=size, p=self.bin_masses)
        lows = self.bin_edges[bins]
        highs = self.bin_edges[bins + 1]
        return rng.uniform(lows, highs)

    def mean(self) -> float:
        centers = (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0
        return float(np.dot(centers, self.bin_masses))

    def cdf(self, bandwidth: float) -> float:
        if bandwidth <= self.bin_edges[0]:
            return 0.0
        if bandwidth >= self.bin_edges[-1]:
            return 1.0
        index = int(np.searchsorted(self.bin_edges, bandwidth, side="right") - 1)
        low, high = self.bin_edges[index], self.bin_edges[index + 1]
        within = (bandwidth - low) / (high - low)
        return float(self._cumulative[index] + within * self.bin_masses[index])

    def quantile(self, probability: float) -> float:
        """Inverse CDF; used by reports to quote median path bandwidth."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"probability must be in [0, 1], got {probability}")
        index = int(np.searchsorted(self._cumulative, probability, side="right") - 1)
        index = min(max(index, 0), self.bin_masses.size - 1)
        mass_before = self._cumulative[index]
        mass_in_bin = self.bin_masses[index]
        low, high = self.bin_edges[index], self.bin_edges[index + 1]
        if mass_in_bin <= 0:
            return float(low)
        within = (probability - mass_before) / mass_in_bin
        return float(low + min(max(within, 0.0), 1.0) * (high - low))


#: CDF control points read from Figure 2(b) of the paper.  The two anchor
#: values quoted in the text are exact (37% below 50 KB/s, 56% below
#: 100 KB/s); the remaining points follow the published curve's shape,
#: flattening out toward 450 KB/s.
NLANR_CDF_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.00),
    (10.0, 0.08),
    (25.0, 0.21),
    (50.0, 0.37),
    (75.0, 0.48),
    (100.0, 0.56),
    (150.0, 0.67),
    (200.0, 0.75),
    (250.0, 0.82),
    (300.0, 0.88),
    (350.0, 0.92),
    (400.0, 0.96),
    (450.0, 1.00),
)


class NLANRBandwidthDistribution(HistogramBandwidthDistribution):
    """The NLANR cache-log bandwidth distribution of Figure 2.

    Built as a piecewise-uniform histogram whose CDF passes through
    :data:`NLANR_CDF_POINTS`.  This is the default base-bandwidth model used
    by every simulation in Section 4.
    """

    def __init__(self) -> None:
        edges = [point[0] for point in NLANR_CDF_POINTS]
        cdf_values = [point[1] for point in NLANR_CDF_POINTS]
        masses = np.diff(np.asarray(cdf_values))
        super().__init__(edges, masses)


class EmpiricalBandwidthDistribution(HistogramBandwidthDistribution):
    """Histogram distribution estimated from raw bandwidth samples.

    This is how the paper itself proceeds: raw per-transfer throughput
    samples (object size divided by connection duration) are binned into
    4 KB/s slots to form the Figure 2 histogram.
    """

    def __init__(self, samples: Sequence[float], bin_width: float = 4.0):
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ConfigurationError("samples must be non-empty")
        if np.any(data < 0):
            raise ConfigurationError("bandwidth samples must be non-negative")
        if bin_width <= 0:
            raise ConfigurationError(f"bin_width must be positive, got {bin_width}")
        upper = max(float(data.max()), bin_width)
        num_bins = int(np.ceil(upper / bin_width))
        edges = np.arange(0.0, (num_bins + 1) * bin_width, bin_width)
        counts, _ = np.histogram(data, bins=edges)
        if counts.sum() == 0:
            raise ConfigurationError("all samples fell outside the histogram bins")
        super().__init__(edges, counts.astype(float))
        self.sample_count = int(data.size)
        self.raw_mean = float(data.mean())
