"""Unit tests for the cache policies (IF, PB, IB, value-based, classic)."""

import pytest

from repro.core.policies import (
    HybridPartialBandwidthPolicy,
    IntegralBandwidthPolicy,
    IntegralBandwidthValuePolicy,
    IntegralFrequencyPolicy,
    LFUPolicy,
    LRUPolicy,
    PartialBandwidthPolicy,
    PartialBandwidthValuePolicy,
    PolicyContext,
    make_policy,
)
from repro.core.policies.value_based import HybridPartialBandwidthValuePolicy
from repro.core.store import CacheStore
from repro.exceptions import ConfigurationError
from repro.workload.catalog import MediaObject


def ctx(now=0.0, bandwidth=24.0, frequency=1.0):
    return PolicyContext(now=now, bandwidth=bandwidth, frequency=frequency)


@pytest.fixture
def obj():
    """A 100-second 48 KB/s object (4800 KB), value $5."""
    return MediaObject(object_id=1, duration=100.0, bitrate=48.0, value=5.0)


class TestUtilityAndTargets:
    def test_if_policy_caches_whole_object_regardless_of_bandwidth(self, obj):
        policy = IntegralFrequencyPolicy()
        assert policy.utility(obj, ctx(frequency=3.0)) == 3.0
        assert policy.target_cache_bytes(obj, ctx(bandwidth=500.0)) == obj.size

    def test_pb_policy_targets_required_prefix_only(self, obj):
        policy = PartialBandwidthPolicy()
        assert policy.target_cache_bytes(obj, ctx(bandwidth=24.0)) == pytest.approx(2400.0)
        assert policy.target_cache_bytes(obj, ctx(bandwidth=48.0)) == 0.0
        assert policy.target_cache_bytes(obj, ctx(bandwidth=100.0)) == 0.0

    def test_pb_utility_prefers_slower_paths(self, obj):
        policy = PartialBandwidthPolicy()
        slow = policy.utility(obj, ctx(bandwidth=10.0, frequency=1.0))
        fast = policy.utility(obj, ctx(bandwidth=40.0, frequency=1.0))
        assert slow > fast

    def test_ib_policy_targets_whole_object_when_bottlenecked(self, obj):
        policy = IntegralBandwidthPolicy()
        assert policy.target_cache_bytes(obj, ctx(bandwidth=24.0)) == obj.size
        assert policy.target_cache_bytes(obj, ctx(bandwidth=60.0)) == 0.0

    def test_hybrid_interpolates_between_pb_and_ib(self, obj):
        pb_target = PartialBandwidthPolicy().target_cache_bytes(obj, ctx(bandwidth=24.0))
        hybrid = HybridPartialBandwidthPolicy(estimator_e=0.5)
        hybrid_target = hybrid.target_cache_bytes(obj, ctx(bandwidth=24.0))
        # e=0.5 treats the 24 KB/s path as 12 KB/s: prefix (48-12)*100 = 3600.
        assert hybrid_target == pytest.approx(3600.0)
        assert pb_target < hybrid_target < obj.size

    def test_hybrid_estimator_validation(self):
        with pytest.raises(ConfigurationError):
            HybridPartialBandwidthPolicy(estimator_e=0.0)
        with pytest.raises(ConfigurationError):
            HybridPartialBandwidthPolicy(estimator_e=1.5)

    def test_pbv_utility_is_profit_density(self, obj):
        policy = PartialBandwidthValuePolicy()
        utility = policy.utility(obj, ctx(bandwidth=24.0, frequency=2.0))
        # F * V / required prefix = 2 * 5 / 2400
        assert utility == pytest.approx(10.0 / 2400.0)
        assert policy.target_cache_bytes(obj, ctx(bandwidth=24.0)) == pytest.approx(2400.0)

    def test_pbv_ignores_objects_with_enough_bandwidth(self, obj):
        policy = PartialBandwidthValuePolicy()
        assert policy.utility(obj, ctx(bandwidth=60.0)) == 0.0
        assert policy.target_cache_bytes(obj, ctx(bandwidth=60.0)) == 0.0

    def test_ibv_utility_prefers_low_bandwidth_high_value_small(self):
        policy = IntegralBandwidthValuePolicy()
        small_valuable = MediaObject(object_id=1, duration=50.0, bitrate=48.0, value=9.0)
        big_cheap = MediaObject(object_id=2, duration=500.0, bitrate=48.0, value=1.0)
        assert policy.utility(small_valuable, ctx(bandwidth=10.0)) > policy.utility(
            big_cheap, ctx(bandwidth=10.0)
        )
        assert policy.utility(small_valuable, ctx(bandwidth=10.0)) > policy.utility(
            small_valuable, ctx(bandwidth=40.0)
        )

    def test_lru_utility_is_access_time(self, obj):
        policy = LRUPolicy()
        assert policy.utility(obj, ctx(now=42.0)) == 42.0
        assert policy.target_cache_bytes(obj, ctx()) == obj.size

    def test_lfu_matches_if(self, obj):
        assert LFUPolicy().utility(obj, ctx(frequency=7.0)) == IntegralFrequencyPolicy().utility(
            obj, ctx(frequency=7.0)
        )


class TestReplacementEngine:
    def make_objects(self):
        # Three objects, 1000 KB each, on a 10 KB/s path (all bottlenecked).
        return [
            MediaObject(object_id=i, duration=100.0, bitrate=10.0 + 0.0, server_id=0)
            for i in range(3)
        ]

    def test_admission_when_space_available(self, obj):
        policy = PartialBandwidthPolicy()
        store = CacheStore(10_000.0)
        policy.on_request(obj, bandwidth=24.0, now=0.0, store=store)
        assert store.cached_bytes(obj.object_id) == pytest.approx(2400.0)

    def test_integral_policy_caches_whole_object(self, obj):
        policy = IntegralBandwidthPolicy()
        store = CacheStore(10_000.0)
        policy.on_request(obj, bandwidth=24.0, now=0.0, store=store)
        assert store.cached_bytes(obj.object_id) == pytest.approx(obj.size)

    def test_no_caching_when_bandwidth_sufficient(self, obj):
        for policy in (PartialBandwidthPolicy(), IntegralBandwidthPolicy()):
            store = CacheStore(10_000.0)
            policy.on_request(obj, bandwidth=96.0, now=0.0, store=store)
            assert store.cached_bytes(obj.object_id) == 0.0

    def test_higher_frequency_object_evicts_lower(self):
        objects = [
            MediaObject(object_id=i, duration=100.0, bitrate=48.0, server_id=0)
            for i in range(2)
        ]
        policy = IntegralFrequencyPolicy()
        store = CacheStore(objects[0].size)  # room for exactly one object
        policy.on_request(objects[0], bandwidth=24.0, now=0.0, store=store)
        assert store.cached_bytes(0) > 0
        # Object 1 requested twice: now more frequent than object 0.
        policy.on_request(objects[1], bandwidth=24.0, now=1.0, store=store)
        policy.on_request(objects[1], bandwidth=24.0, now=2.0, store=store)
        assert store.cached_bytes(1) == pytest.approx(objects[1].size)
        assert store.cached_bytes(0) == 0.0

    def test_integral_policy_never_partially_admits(self):
        objects = [
            MediaObject(object_id=0, duration=100.0, bitrate=48.0),
            MediaObject(object_id=1, duration=150.0, bitrate=48.0),
        ]
        policy = IntegralFrequencyPolicy()
        store = CacheStore(objects[0].size + 100.0)
        policy.on_request(objects[0], bandwidth=24.0, now=0.0, store=store)
        policy.on_request(objects[0], bandwidth=24.0, now=1.0, store=store)
        # Object 1 is less frequent; it must not displace object 0, and the
        # integral policy must not squeeze a fragment into the leftover 100 KB.
        policy.on_request(objects[1], bandwidth=24.0, now=2.0, store=store)
        assert store.cached_bytes(1) == 0.0
        assert store.cached_bytes(0) == pytest.approx(objects[0].size)

    def test_partial_policy_admits_fraction_into_leftover_space(self):
        objects = [
            MediaObject(object_id=0, duration=100.0, bitrate=48.0),
            MediaObject(object_id=1, duration=100.0, bitrate=48.0),
        ]
        policy = PartialBandwidthPolicy()
        # Capacity holds object 0's full 2400 KB prefix plus 500 KB extra.
        store = CacheStore(2900.0)
        policy.on_request(objects[0], bandwidth=24.0, now=0.0, store=store)
        policy.on_request(objects[0], bandwidth=24.0, now=1.0, store=store)
        policy.on_request(objects[1], bandwidth=24.0, now=2.0, store=store)
        # Object 1 has lower utility, so it only gets the leftover 500 KB.
        assert store.cached_bytes(0) == pytest.approx(2400.0)
        assert store.cached_bytes(1) == pytest.approx(500.0)

    def test_partial_policy_trims_marginal_victim(self):
        objects = [
            MediaObject(object_id=0, duration=100.0, bitrate=48.0),
            MediaObject(object_id=1, duration=100.0, bitrate=48.0),
        ]
        policy = PartialBandwidthPolicy()
        store = CacheStore(2400.0 + 1200.0)
        # Object 0 cached fully (2400), object 1 gets leftover 1200.
        policy.on_request(objects[0], bandwidth=24.0, now=0.0, store=store)
        policy.on_request(objects[1], bandwidth=24.0, now=1.0, store=store)
        assert store.cached_bytes(1) == pytest.approx(1200.0)
        # Now object 1 becomes the more frequent one and claims its full prefix,
        # trimming object 0 rather than evicting it entirely.
        policy.on_request(objects[1], bandwidth=24.0, now=2.0, store=store)
        policy.on_request(objects[1], bandwidth=24.0, now=3.0, store=store)
        assert store.cached_bytes(1) == pytest.approx(2400.0)
        assert store.cached_bytes(0) == pytest.approx(1200.0)
        assert store.verify_consistency()

    def test_on_request_returns_context(self, obj):
        policy = PartialBandwidthPolicy()
        store = CacheStore(10_000.0)
        returned = policy.on_request(obj, bandwidth=24.0, now=3.0, store=store)
        assert returned.now == 3.0
        assert returned.bandwidth == 24.0
        assert returned.frequency == 1.0

    def test_reset_clears_frequencies(self, obj):
        policy = PartialBandwidthPolicy()
        store = CacheStore(10_000.0)
        policy.on_request(obj, bandwidth=24.0, now=0.0, store=store)
        policy.reset()
        assert policy.frequencies.total_requests == 0
        assert policy.cached_utility(obj.object_id) is None

    def test_store_never_overflows_under_any_policy(self):
        objects = [
            MediaObject(object_id=i, duration=50.0 + 10 * i, bitrate=48.0, value=1 + i)
            for i in range(8)
        ]
        for factory in (
            IntegralFrequencyPolicy,
            PartialBandwidthPolicy,
            IntegralBandwidthPolicy,
            PartialBandwidthValuePolicy,
            IntegralBandwidthValuePolicy,
            LRUPolicy,
        ):
            policy = factory()
            store = CacheStore(4_000.0)
            for step in range(100):
                obj = objects[step % len(objects)]
                policy.on_request(obj, bandwidth=20.0, now=float(step), store=store)
                assert store.used_kb <= store.capacity_kb + 1e-6
                assert store.verify_consistency()


class TestRegistry:
    def test_known_policies(self):
        for name in ("IF", "PB", "IB", "PB-V", "IB-V", "LRU", "LFU"):
            policy = make_policy(name)
            assert policy.name.upper().startswith(name.split("-")[0])

    def test_case_insensitive(self):
        assert make_policy("pb").name == "PB"

    def test_estimator_e_builds_hybrids(self):
        policy = make_policy("PB", estimator_e=0.5)
        assert isinstance(policy, HybridPartialBandwidthPolicy)
        value_policy = make_policy("PB-V", estimator_e=0.5)
        assert isinstance(value_policy, HybridPartialBandwidthValuePolicy)

    def test_estimator_e_rejected_for_integral_policies(self):
        with pytest.raises(ConfigurationError):
            make_policy("IB", estimator_e=0.5)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("NOPE")
