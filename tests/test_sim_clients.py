"""Heterogeneous client clouds and the reactive re-keying hook.

Three families of guarantees are pinned here:

* **Bit-identity when nothing binds** — a single homogeneous client cloud
  (the default, effectively infinite last mile) routed *through* the
  composition code is bit-identical to the pre-change simulator
  (``client_clouds=None``) on every replay path (property-tested over
  seeds), and attaching a cloud never perturbs origin-path construction.
* **Bit-identity across paths when clouds bind** — with heterogeneous
  per-group last-mile bandwidth enabled, the event calendar, the fast
  path, and the columnar event path still produce identical metrics, per
  policy, for columnar and object traces alike — including runs that add
  re-measurement and reactive re-keying on top.
* **Reactive re-keying semantics** — threshold gating, the
  ``bandwidth_keyed`` guard, configuration validation, and the
  end-to-end real-log pipeline (``repro ingest`` → per-client clouds →
  ``repro run``) of the acceptance criteria.
"""

from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import POLICY_REGISTRY, make_policy
from repro.exceptions import ConfigurationError
from repro.network.distributions import (
    ConstantBandwidthDistribution,
    NLANRBandwidthDistribution,
)
from repro.network.topology import ClientCloud
from repro.network.variability import NLANRRatioVariability
from repro.sim.config import BandwidthKnowledge, ClientCloudConfig, SimulationConfig
from repro.sim.events import ReactiveRekeyer, RemeasurementConfig
from repro.sim.simulator import ProxyCacheSimulator
from repro.trace.ingest import ingest_access_log
from repro.workload.gismo import GismoWorkloadGenerator, WorkloadConfig

from conftest import assert_replay_paths_identical, run_replay_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SAMPLE_SQUID = REPO_ROOT / "examples" / "data" / "sample_squid.log"


@pytest.fixture(scope="module")
def client_workload():
    """A small multi-client columnar workload (100 objects, 2000 requests)."""
    config = replace(WorkloadConfig(seed=7).scaled(0.02), num_clients=24)
    return GismoWorkloadGenerator(config).generate(columnar=True)


def _config(**overrides):
    defaults = dict(
        cache_size_gb=0.5, variability=NLANRRatioVariability(), seed=11
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)




# ----------------------------------------------------------------------
# The ClientCloud model itself.
# ----------------------------------------------------------------------
class TestClientCloud:
    def test_default_cloud_is_unmodeled(self):
        cloud = ClientCloud()
        assert not cloud.constrains
        assert cloud.group_count == 0
        assert cloud.last_mile_for(3) is None
        assert cloud.base_bandwidth_for(3) == float("inf")

    def test_homogeneous_groups_share_base_and_model(self):
        cloud = ClientCloud.homogeneous(200.0, groups=4)
        assert cloud.constrains and cloud.group_count == 4
        assert {path.base_bandwidth for path in cloud.paths} == {200.0}
        assert len({id(path.variability) for path in cloud.paths}) == 1
        # Modulo mapping: client 6 of 4 groups lands in group 2.
        assert cloud.last_mile_for(6) is cloud.paths[2]
        assert cloud.base_bandwidth_for(6) == 200.0

    def test_from_distribution_draws_one_base_per_group(self):
        rng = np.random.default_rng(3)
        cloud = ClientCloud.from_distribution(8, NLANRBandwidthDistribution(), rng)
        assert cloud.group_count == 8
        bases = [path.base_bandwidth for path in cloud.paths]
        assert len(set(bases)) > 1  # heterogeneous
        assert all(base >= 1.0 for base in bases)
        assert cloud.last_mile_bandwidth == pytest.approx(np.mean(bases))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClientCloud(num_clients=0)
        with pytest.raises(ConfigurationError):
            ClientCloud(paths=())
        with pytest.raises(ConfigurationError):
            ClientCloud.homogeneous(100.0, groups=0)
        with pytest.raises(ConfigurationError):
            ClientCloud.from_distribution(
                0, ConstantBandwidthDistribution(50.0), np.random.default_rng(0)
            )


class TestClientCloudConfig:
    def test_rejects_conflicting_modes(self):
        with pytest.raises(ConfigurationError):
            ClientCloudConfig(
                bandwidth=100.0, distribution=ConstantBandwidthDistribution(50.0)
            )
        with pytest.raises(ConfigurationError):
            ClientCloudConfig(groups=0)
        with pytest.raises(ConfigurationError):
            ClientCloudConfig(bandwidth=0.0)

    def test_default_builds_non_binding_cloud(self):
        cloud = ClientCloudConfig(groups=3).build_cloud(np.random.default_rng(0))
        assert cloud.group_count == 3
        assert all(path.base_bandwidth == float("inf") for path in cloud.paths)

    def test_distribution_builds_heterogeneous_cloud(self):
        config = ClientCloudConfig(groups=5, distribution=NLANRBandwidthDistribution())
        cloud = config.build_cloud(np.random.default_rng(1))
        assert len({path.base_bandwidth for path in cloud.paths}) > 1


# ----------------------------------------------------------------------
# Property: a single homogeneous cloud is bit-identical to the
# pre-change simulator on every replay path.
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16), groups=st.integers(1, 5))
def test_homogeneous_cloud_bit_identical_to_unmodeled(seed, groups):
    config = replace(WorkloadConfig(seed=3).scaled(0.005), num_clients=6)
    workload = GismoWorkloadGenerator(config).generate(columnar=True)
    plain = _config(seed=seed)
    clouded = plain.with_client_clouds(ClientCloudConfig(groups=groups))
    for mode in ("event", "fast", "columnar-event"):
        a = ProxyCacheSimulator(workload, plain).run(make_policy("PB"), replay=mode)
        b = ProxyCacheSimulator(workload, clouded).run(make_policy("PB"), replay=mode)
        assert a.as_dict() == b.as_dict(), mode


def test_homogeneous_cloud_bit_identical_for_every_policy(client_workload):
    plain = _config()
    clouded = plain.with_client_clouds(ClientCloudConfig(groups=1))
    for policy_name in sorted(POLICY_REGISTRY):
        a = ProxyCacheSimulator(client_workload, plain).run(make_policy(policy_name))
        b = ProxyCacheSimulator(client_workload, clouded).run(make_policy(policy_name))
        assert a.as_dict() == b.as_dict(), policy_name


def test_cloud_attachment_never_perturbs_origin_paths(client_workload):
    plain = ProxyCacheSimulator(client_workload, _config())
    clouded = ProxyCacheSimulator(
        client_workload,
        _config().with_client_clouds(
            ClientCloudConfig(groups=8, distribution=NLANRBandwidthDistribution())
        ),
    )
    topo_plain = plain.build_topology(np.random.default_rng(11))
    topo_cloud = clouded.build_topology(np.random.default_rng(11))
    assert [p.base_bandwidth for p in topo_plain.paths] == [
        p.base_bandwidth for p in topo_cloud.paths
    ]
    assert topo_cloud.clients.constrains and not topo_plain.clients.constrains
    assert topo_cloud.last_mile_for(5) is topo_cloud.clients.paths[5 % 8]


# ----------------------------------------------------------------------
# Heterogeneous clouds: all replay paths agree, and the hop binds.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy_name", sorted(POLICY_REGISTRY))
def test_heterogeneous_cloud_bit_identical_across_paths(client_workload, policy_name):
    config = _config().with_client_clouds(
        ClientCloudConfig(groups=8, distribution=NLANRBandwidthDistribution())
    )
    assert_replay_paths_identical(client_workload, config, policy_name)


def test_heterogeneous_cloud_on_object_trace_agrees(client_workload):
    """The non-columnar loops resolve client ids from Request objects.

    ``run_replay_paths`` derives the object-per-request trace from the
    columnar one, so the identity assertion covers both the in-loop
    client-id resolution styles and the trace conversion itself.
    """
    config = _config().with_client_clouds(
        ClientCloudConfig(groups=8, distribution=NLANRBandwidthDistribution())
    )
    results = assert_replay_paths_identical(client_workload, config)
    assert results["fast"].replay_path == "fast"
    assert results["columnar-fast"].used_fast_path


def test_binding_cloud_changes_outcomes_and_monotonically_hurts(client_workload):
    plain = ProxyCacheSimulator(client_workload, _config()).run(make_policy("PB"))
    capped = ProxyCacheSimulator(
        client_workload,
        _config().with_client_clouds(ClientCloudConfig(groups=4, bandwidth=30.0)),
    ).run(make_policy("PB"))
    assert capped.as_dict() != plain.as_dict()
    # A binding last mile can only slow delivery, never speed it up.
    assert capped.metrics.average_service_delay >= plain.metrics.average_service_delay
    assert capped.metrics.average_stream_quality <= plain.metrics.average_stream_quality


def test_heterogeneous_cloud_with_remeasurement_paths_agree(client_workload):
    config = _config(
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        remeasurement=RemeasurementConfig(interval=150.0),
    ).with_client_clouds(
        ClientCloudConfig(groups=8, distribution=NLANRBandwidthDistribution())
    )
    simulator = ProxyCacheSimulator(client_workload, config)
    topology = simulator.build_topology(np.random.default_rng(config.seed))
    calendar = simulator.run(make_policy("PB"), topology=topology, replay="event")
    colev = simulator.run(
        make_policy("PB"), topology=topology, replay="columnar-event"
    )
    assert calendar.auxiliary_events_fired == colev.auxiliary_events_fired > 0
    assert calendar.as_dict() == colev.as_dict()


# ----------------------------------------------------------------------
# Reactive re-keying.
# ----------------------------------------------------------------------
def _reactive_config(**overrides):
    defaults = dict(
        bandwidth_knowledge=BandwidthKnowledge.PASSIVE,
        remeasurement=RemeasurementConfig(interval=120.0),
        reactive_threshold=0.15,
    )
    defaults.update(overrides)
    return _config(**defaults)


class TestReactiveRekeying:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            _config(reactive_threshold=0.2)  # no remeasurement
        with pytest.raises(ConfigurationError):
            _config(
                remeasurement=RemeasurementConfig(interval=60.0),
                reactive_threshold=0.2,
            )  # oracle knowledge: nothing ever shifts
        with pytest.raises(ConfigurationError):
            _reactive_config(reactive_threshold=-0.1)

    def test_shifts_fire_and_rekey_bandwidth_keyed_policies(self, client_workload):
        result = ProxyCacheSimulator(client_workload, _reactive_config()).run(
            make_policy("PB")
        )
        assert result.reactive_shifts > 0
        assert result.reactive_rekeys > 0
        assert result.replay_path == "columnar-event"

    def test_rekeying_changes_eviction_outcomes(self, client_workload):
        reactive = ProxyCacheSimulator(client_workload, _reactive_config()).run(
            make_policy("PB")
        )
        passive = ProxyCacheSimulator(
            client_workload, _reactive_config(reactive_threshold=None)
        ).run(make_policy("PB"))
        assert reactive.as_dict() != passive.as_dict()

    def test_non_bandwidth_keyed_policies_are_never_rekeyed(self, client_workload):
        for policy_name in ("LRU", "LFU", "IF"):
            result = ProxyCacheSimulator(client_workload, _reactive_config()).run(
                make_policy(policy_name)
            )
            assert result.reactive_rekeys == 0, policy_name

    def test_reactive_runs_bit_identical_across_event_paths(self, client_workload):
        config = _reactive_config()
        simulator = ProxyCacheSimulator(client_workload, config)
        topology = simulator.build_topology(np.random.default_rng(config.seed))
        calendar = simulator.run(make_policy("PB"), topology=topology, replay="event")
        colev = simulator.run(
            make_policy("PB"), topology=topology, replay="columnar-event"
        )
        assert calendar.as_dict() == colev.as_dict()
        assert calendar.reactive_shifts == colev.reactive_shifts > 0
        assert calendar.reactive_rekeys == colev.reactive_rekeys

    def test_threshold_gates_rekeying(self, client_workload):
        tight = ProxyCacheSimulator(
            client_workload, _reactive_config(reactive_threshold=0.01)
        ).run(make_policy("PB"))
        loose = ProxyCacheSimulator(
            client_workload, _reactive_config(reactive_threshold=10.0)
        ).run(make_policy("PB"))
        assert tight.reactive_shifts > loose.reactive_shifts
        assert loose.reactive_shifts == 0

    def test_on_bandwidth_shift_rekeys_only_matching_server(self, small_catalog):
        from repro.core.store import CacheStore

        policy = make_policy("PB")
        store = CacheStore(capacity_kb=1e9)
        policy.install(store, small_catalog)
        for obj in small_catalog:
            policy.on_request(obj, 20.0, 0.0, store)
        before = {
            oid: policy.cached_utility(oid)
            for oid in (0, 1, 2, 3)
        }
        # Server 0 hosts objects 0 and 3; double their believed bandwidth.
        rekeyed = policy.on_bandwidth_shift(0, 40.0, 1.0)
        assert rekeyed == 2
        assert policy.cached_utility(1) == before[1]
        assert policy.cached_utility(2) == before[2]
        assert policy.cached_utility(0) == pytest.approx(before[0] / 2.0)
        assert policy.cached_utility(3) == pytest.approx(before[3] / 2.0)
        # Generation-keyed: the superseded entries linger as stale garbage.
        stats = policy.heap_statistics()
        assert stats["stale_entries"] >= 0
        assert stats["live_entries"] == 4

    def test_rekeyer_anchor_semantics(self, small_catalog):
        from repro.core.store import CacheStore
        from repro.network.measurement import PassiveEstimator

        policy = make_policy("PB")
        store = CacheStore(capacity_kb=1e9)
        policy.install(store, small_catalog)
        policy.on_request(small_catalog.get(0), 20.0, 0.0, store)
        estimator = PassiveEstimator(smoothing=1.0)
        rekeyer = ReactiveRekeyer(policy, estimator, threshold=0.5)

        prior = estimator.estimate(0)  # the initial estimate, 100
        estimator.observe(0, 120.0)
        rekeyer.notify(1.0, 0, prior)  # anchor seeds at 100; 20% < 50%: no shift
        assert rekeyer.shifts == 0
        estimator.observe(0, 300.0)
        rekeyer.notify(2.0, 0, 120.0)  # 200% > 50%: re-key, move the anchor
        assert rekeyer.shifts == 1 and rekeyer.entries_rekeyed == 1
        estimator.observe(0, 310.0)
        rekeyer.notify(3.0, 0, 300.0)  # small move relative to the *new* anchor
        assert rekeyer.shifts == 1
        with pytest.raises(ConfigurationError):
            ReactiveRekeyer(policy, estimator, threshold=0.0)


# ----------------------------------------------------------------------
# End-to-end: real ingested log -> per-client clouds -> all replay paths.
# ----------------------------------------------------------------------
def test_ingested_log_heterogeneity_end_to_end():
    result = ingest_access_log(SAMPLE_SQUID)
    assert result.summary.unique_clients > 1  # real per-client identity survives
    workload = result.to_workload()
    assert set(workload.trace.client_ids_array.tolist()) == set(
        result.client_ids.values()
    )
    config = SimulationConfig(
        cache_size_gb=max(0.1 * workload.catalog.total_size_gb, 1e-6),
        variability=NLANRRatioVariability(),
        client_clouds=ClientCloudConfig(
            groups=4, distribution=NLANRBandwidthDistribution()
        ),
        seed=5,
    )
    results = assert_replay_paths_identical(workload, config)
    reference = results["event"].as_dict()
    # The same pipeline without the clouds differs: heterogeneity binds.
    plain = ProxyCacheSimulator(workload, config.with_client_clouds(None)).run(
        make_policy("PB")
    )
    assert plain.as_dict() != reference


# ----------------------------------------------------------------------
# Regressions from review: stream separation and the re-key cap.
# ----------------------------------------------------------------------
def test_construction_and_request_streams_are_separated(client_workload):
    """The per-request last-mile draws must not replay the base draws.

    Both streams derive from the cloud's tagged seed, but with distinct
    purpose tags: a generator seeded for construction reproduces the group
    bases exactly (that is what makes topologies deterministic), while the
    request-time ratio stream starts from a different state.
    """
    config = _config().with_client_clouds(
        ClientCloudConfig(groups=4, distribution=NLANRBandwidthDistribution())
    )
    simulator = ProxyCacheSimulator(client_workload, config)
    topology = simulator.build_topology(np.random.default_rng(config.seed))
    bases = sorted(path.base_bandwidth for path in topology.clients.paths)
    construction = np.maximum(
        NLANRBandwidthDistribution().sample(
            4, np.random.default_rng(simulator._client_cloud_seed(0))
        ),
        1.0,
    )
    request_stream = NLANRBandwidthDistribution().sample(
        4, np.random.default_rng(simulator._client_cloud_seed(1))
    )
    assert sorted(construction.tolist()) == pytest.approx(bases)
    assert not np.allclose(construction, request_stream)


def test_rekeyer_caps_shift_detection_at_last_mile_ceiling(small_catalog):
    """Estimate movement entirely above the cloud ceiling re-keys nothing."""
    from repro.core.store import CacheStore
    from repro.network.measurement import PassiveEstimator

    policy = make_policy("PB")
    store = CacheStore(capacity_kb=1e9)
    policy.install(store, small_catalog)
    policy.on_request(small_catalog.get(0), 20.0, 0.0, store)
    estimator = PassiveEstimator(smoothing=1.0)
    rekeyer = ReactiveRekeyer(policy, estimator, threshold=0.2, bandwidth_cap=50.0)

    prior = estimator.estimate(0)  # initial 100, capped to 50 when seeding
    estimator.observe(0, 100.0)
    rekeyer.notify(1.0, 0, prior)  # anchor seeds at the *capped* value, 50
    assert rekeyer.shifts == 0
    estimator.observe(0, 300.0)
    rekeyer.notify(2.0, 0, 100.0)  # still capped to 50: no client would notice
    assert rekeyer.shifts == 0
    estimator.observe(0, 30.0)
    rekeyer.notify(3.0, 0, 300.0)  # below the cap: a real believed-bandwidth shift
    assert rekeyer.shifts == 1
    with pytest.raises(ConfigurationError):
        ReactiveRekeyer(policy, estimator, threshold=0.2, bandwidth_cap=0.0)


def test_reactive_cap_derived_from_cloud_ceiling(client_workload):
    """A binding homogeneous cloud suppresses shifts above its ceiling."""
    capped = ProxyCacheSimulator(
        client_workload,
        _reactive_config().with_client_clouds(
            ClientCloudConfig(groups=4, bandwidth=2.0)
        ),
    ).run(make_policy("PB"))
    uncapped = ProxyCacheSimulator(client_workload, _reactive_config()).run(
        make_policy("PB")
    )
    # With every believed bandwidth clamped to 2 KB/s, estimates moving in
    # the tens-to-hundreds range can never cross the threshold.
    assert capped.reactive_shifts == 0
    assert uncapped.reactive_shifts > 0
