"""Delivery topology: origin servers, proxy cache, client cloud (Figure 1).

The paper's architecture has three tiers: origin servers somewhere on the
Internet, a caching proxy at the edge, and a cloud of clients behind the
proxy.  The topology object wires a
:class:`~repro.workload.catalog.Catalog` to a
:class:`~repro.network.path.PathRegistry` so that, given an object, the
simulator can look up the bandwidth of the path to that object's origin
server.

The paper assumes the client side's last mile is abundant; the default
:class:`ClientCloud` keeps that assumption.  Giving the cloud per-group
last-mile :class:`~repro.network.path.NetworkPath` objects promotes the
cache-to-client hop to a modeled link, and the simulator composes the two
hops per request (``docs/clients.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.distributions import BandwidthDistribution, NLANRBandwidthDistribution
from repro.network.path import NetworkPath, PathRegistry
from repro.network.variability import BandwidthVariabilityModel, ConstantVariability
from repro.workload.catalog import Catalog, MediaObject


@dataclass(frozen=True)
class OriginServer:
    """An origin server hosting a subset of the catalog."""

    server_id: int
    object_ids: tuple

    @property
    def object_count(self) -> int:
        """Number of objects hosted on this server."""
        return len(self.object_ids)


@dataclass(frozen=True)
class ClientCloud:
    """The client population behind the proxy, with optional last-mile paths.

    The paper assumes abundant bandwidth between clients and the proxy
    ("we assume abundant bandwidth at the last mile of the client side"),
    and the default construction keeps that assumption: no modeled paths,
    an effectively infinite cache-to-client hop.

    Setting ``paths`` promotes the hop to a first-class modeled link: one
    :class:`~repro.network.path.NetworkPath` per client *group*, where
    client ``c`` maps to ``paths[c % len(paths)]`` (a stable hash of the
    trace's ``client_id`` column into the configured groups).  Each group
    path combines a base last-mile bandwidth with its own variability
    model, exactly like the cache-to-server paths; the simulator then
    composes the two hops per request — the delivered bandwidth is the
    bottleneck ``min(origin hop, last-mile hop)``.  See ``docs/clients.md``.

    A path's ``server_id`` field doubles as the *group index* here; the
    registry semantics ("endpoint id") carry over unchanged.
    """

    num_clients: int = 1
    last_mile_bandwidth: float = float("inf")
    paths: Optional[Tuple[NetworkPath, ...]] = None

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ConfigurationError(f"num_clients must be positive, got {self.num_clients}")
        if self.last_mile_bandwidth <= 0:
            raise ConfigurationError(
                f"last_mile_bandwidth must be positive, got {self.last_mile_bandwidth}"
            )
        if self.paths is not None:
            if not self.paths:
                raise ConfigurationError(
                    "paths must be non-empty when given; use None for the "
                    "paper's unmodeled abundant last mile"
                )
            object.__setattr__(self, "paths", tuple(self.paths))

    @property
    def constrains(self) -> bool:
        """Whether the last-mile hop is modeled at all (``paths`` is set)."""
        return self.paths is not None

    @property
    def group_count(self) -> int:
        """Number of last-mile client groups (0 when the hop is unmodeled)."""
        return 0 if self.paths is None else len(self.paths)

    def last_mile_for(self, client_id: int) -> Optional[NetworkPath]:
        """The last-mile path serving a client (``None`` when unmodeled)."""
        if self.paths is None:
            return None
        return self.paths[int(client_id) % len(self.paths)]

    def base_bandwidth_for(self, client_id: int) -> float:
        """Base last-mile bandwidth (KB/s) a client's group is provisioned at."""
        path = self.last_mile_for(client_id)
        if path is None:
            return self.last_mile_bandwidth
        return path.base_bandwidth

    def group_caps(self) -> Optional[Tuple[float, ...]]:
        """Per-group last-mile base bandwidths, in group order.

        ``None`` when the hop is unmodeled.  This is the cap sequence the
        reactive rekeyer (``repro.sim.events.ReactiveRekeyer``) keys its
        per-group anchors on: a request from group ``g`` never believes
        more than ``group_caps()[g]``, so estimate movement above a group's
        cap is invisible to that group's requests.
        """
        if self.paths is None:
            return None
        return tuple(path.base_bandwidth for path in self.paths)

    @classmethod
    def homogeneous(
        cls,
        bandwidth: float,
        variability: Optional[BandwidthVariabilityModel] = None,
        groups: int = 1,
        num_clients: int = 1,
    ) -> "ClientCloud":
        """Model every client group with the same last-mile base bandwidth.

        All groups share one variability-model instance, so the simulator's
        batched per-request draws stay available.  ``bandwidth`` may be
        ``inf``: the hop is then modeled but never the bottleneck, which is
        how the pre-heterogeneity simulator is reproduced bit-for-bit
        through the composition code (``tests/test_sim_clients.py``).
        """
        if groups <= 0:
            raise ConfigurationError(f"groups must be positive, got {groups}")
        shared = variability or ConstantVariability()
        paths = tuple(
            NetworkPath(server_id=group, base_bandwidth=bandwidth, variability=shared)
            for group in range(groups)
        )
        return cls(
            num_clients=num_clients, last_mile_bandwidth=bandwidth, paths=paths
        )

    @classmethod
    def from_distribution(
        cls,
        groups: int,
        distribution: BandwidthDistribution,
        rng: np.random.Generator,
        variability: Optional[BandwidthVariabilityModel] = None,
        num_clients: Optional[int] = None,
    ) -> "ClientCloud":
        """Draw one last-mile base bandwidth per client group.

        The same construction :meth:`PathRegistry.from_distribution` uses
        for origin paths, applied to the cache-to-client side: every group
        shares the variability *model* while base bandwidths differ, which
        is what makes the client population heterogeneous.  A 1 KB/s floor
        keeps degenerate draws usable.
        """
        if groups <= 0:
            raise ConfigurationError(f"groups must be positive, got {groups}")
        shared = variability or ConstantVariability()
        bandwidths = distribution.sample(groups, rng)
        paths = tuple(
            NetworkPath(
                server_id=group,
                base_bandwidth=max(float(bandwidth), 1.0),
                variability=shared,
            )
            for group, bandwidth in enumerate(np.asarray(bandwidths, dtype=np.float64))
        )
        mean = float(np.mean([path.base_bandwidth for path in paths]))
        return cls(
            num_clients=num_clients if num_clients is not None else groups,
            last_mile_bandwidth=mean,
            paths=paths,
        )


@dataclass(frozen=True)
class ProxyNode:
    """The edge proxy cache: its capacity is the knapsack constraint ``C``."""

    capacity_kb: float

    def __post_init__(self) -> None:
        if self.capacity_kb < 0:
            raise ConfigurationError(
                f"capacity must be non-negative, got {self.capacity_kb}"
            )


@dataclass
class DeliveryTopology:
    """The full server / proxy / client wiring for one simulation."""

    catalog: Catalog
    paths: PathRegistry
    proxy: ProxyNode
    clients: ClientCloud = field(default_factory=ClientCloud)

    def __post_init__(self) -> None:
        missing = [
            server_id
            for server_id in self.catalog.server_ids()
            if server_id not in self.paths
        ]
        if missing:
            raise ConfigurationError(
                f"catalog references servers with no registered path: {missing[:5]}"
                + ("..." if len(missing) > 5 else "")
            )

    def path_for(self, obj: MediaObject) -> NetworkPath:
        """Return the cache-to-server path serving the given object."""
        return self.paths.get(obj.server_id)

    def path_for_object_id(self, object_id: int) -> NetworkPath:
        """Return the path serving the object with the given id."""
        return self.paths.get(self.catalog.get(object_id).server_id)

    def last_mile_for(self, client_id: int) -> Optional[NetworkPath]:
        """Last-mile path of a client's group (``None`` when unmodeled)."""
        return self.clients.last_mile_for(client_id)

    def last_mile_caps(self) -> Optional[Tuple[float, ...]]:
        """Per-group last-mile base bandwidths (``None`` when unmodeled)."""
        return self.clients.group_caps()

    def fault_domains(self) -> Tuple[List[int], int]:
        """The two target spaces fault episodes can hit in this topology.

        Returns ``(server_ids, group_count)``: the origin servers with a
        registered path (targets of origin outages and bandwidth flaps)
        and the number of modeled last-mile client groups (targets of
        link-down / link-flap episodes; 0 under the paper's unmodeled
        abundant last mile).  :meth:`repro.sim.faults.FaultConfig.
        build_schedule` validates scripted episodes and draws stochastic
        targets against exactly these domains.
        """
        return self.paths.server_ids(), self.clients.group_count

    def servers(self) -> List[OriginServer]:
        """Group catalog objects by hosting server."""
        by_server: Dict[int, List[int]] = {}
        for obj in self.catalog:
            by_server.setdefault(obj.server_id, []).append(obj.object_id)
        return [
            OriginServer(server_id=server_id, object_ids=tuple(ids))
            for server_id, ids in sorted(by_server.items())
        ]

    def bottleneck_objects(self) -> List[int]:
        """Objects whose bit-rate exceeds their path's base bandwidth.

        These are the objects the network-aware policies consider caching at
        all; everything else streams fine straight from its origin server.
        """
        return [
            obj.object_id
            for obj in self.catalog
            if obj.bitrate > self.path_for(obj).base_bandwidth
        ]

    @classmethod
    def build(
        cls,
        catalog: Catalog,
        cache_capacity_kb: float,
        bandwidth_distribution: Optional[BandwidthDistribution] = None,
        variability: Optional[BandwidthVariabilityModel] = None,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        clients: Optional[ClientCloud] = None,
    ) -> "DeliveryTopology":
        """Construct a topology by sampling per-server base bandwidths.

        This is the standard construction of the paper's simulations: one
        path per origin server, base bandwidth drawn from the NLANR-derived
        distribution, and a shared variability model (constant, NLANR-like,
        or measured-path-like depending on the experiment).  ``clients``
        optionally attaches a modeled :class:`ClientCloud`; the default is
        the paper's unmodeled abundant last mile.
        """
        rng = rng or np.random.default_rng(seed)
        distribution = bandwidth_distribution or NLANRBandwidthDistribution()
        variability = variability or ConstantVariability()
        paths = PathRegistry.from_distribution(
            catalog.server_ids(), distribution, rng, variability
        )
        return cls(
            catalog=catalog,
            paths=paths,
            proxy=ProxyNode(capacity_kb=cache_capacity_kb),
            clients=clients if clients is not None else ClientCloud(),
        )
