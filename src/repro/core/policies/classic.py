"""Classic network-unaware baselines: LRU and LFU.

Section 3.3 points out that algorithms "such as LRU and LFU cache objects
based on their access frequency only, not on the network bandwidth"; they
aim at hit ratio / traffic reduction rather than delay or quality.  Both are
provided as whole-object policies plugged into the same replacement engine,
so the network-aware policies can be compared against the textbook
baselines in addition to the paper's IF strawman.
"""

from __future__ import annotations

from repro.core.policies.base import CachePolicy, PolicyContext
from repro.workload.catalog import MediaObject


class LRUPolicy(CachePolicy):
    """Least Recently Used: utility is the time of the most recent access.

    The least recently requested cached object has the smallest utility and
    is evicted first.  Whole objects only.
    """

    name = "LRU"
    allows_partial = False

    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return ctx.now

    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return obj.size


class LFUPolicy(CachePolicy):
    """Least Frequently Used: utility is the request count.

    Functionally identical to the paper's IF policy; kept as a separate
    class so experiments can list both names explicitly.
    """

    name = "LFU"
    allows_partial = False

    def utility(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return ctx.frequency

    def target_cache_bytes(self, obj: MediaObject, ctx: PolicyContext) -> float:
        return obj.size
