"""Figure 10 — Value-based caching under constant bandwidth.

Regenerates the traffic-reduction and total-added-value panels for IF, PB-V,
and IB-V.  The paper's observations: IF achieves the highest traffic
reduction but is not effective at maximising added value; PB-V yields the
highest added value; IB-V strikes a balance between the two.
"""

from benchmarks.conftest import (
    BENCH_CACHE_FRACTIONS,
    BENCH_JOBS,
    BENCH_RUNS,
    BENCH_SCALE,
    report,
    run_once,
    summarize_sweep,
)
from repro.analysis.experiments import experiment_fig10_value_constant


def test_fig10_value_based_constant_bandwidth(benchmark):
    result = run_once(
        benchmark,
        experiment_fig10_value_constant,
        scale=BENCH_SCALE,
        num_runs=BENCH_RUNS,
        cache_fractions=BENCH_CACHE_FRACTIONS,
        seed=0,
        n_jobs=BENCH_JOBS,
    )
    sweep = result.data["sweep"]
    extra = {}
    for metric in ("traffic_reduction_ratio", "total_added_value"):
        extra.update(summarize_sweep(sweep, metric))
    report(benchmark, result, extra=extra)

    for index in range(len(sweep.parameter_values)):
        trr = {p: sweep.series(p, "traffic_reduction_ratio")[index] for p in sweep.policies()}
        value = {p: sweep.series(p, "total_added_value")[index] for p in sweep.policies()}
        # Figure 10(a): IF reduces the most traffic.
        assert trr["IF"] >= trr["IB-V"] * 0.98
        assert trr["IF"] >= trr["PB-V"] * 0.98
        # Figure 10(b): the value-aware policies add at least as much value as IF.
        assert value["PB-V"] >= value["IF"] * 0.98
        assert value["IB-V"] >= value["IF"] * 0.98

    # At the largest cache the value-based partial policy clearly beats IF on value.
    last = len(sweep.parameter_values) - 1
    assert sweep.series("PB-V", "total_added_value")[last] > sweep.series(
        "IF", "total_added_value"
    )[last]
