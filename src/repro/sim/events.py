"""Typed auxiliary events: periodic work interleaved with the request stream.

The paper's central claim is that caching decisions should track *measured*
network bandwidth.  Request-driven passive estimation
(:class:`~repro.network.measurement.PassiveEstimator`) only observes a path
when a request happens to use it, so an estimate can go stale for exactly
the unpopular servers whose bandwidth matters most when one of their
objects is finally requested.  This module adds the out-of-band half of the
measurement story: **typed periodic events** that fire *between* requests,
starting with :class:`BandwidthRemeasurement`, which samples the active
:class:`~repro.network.path.NetworkPath` distributions on a configurable
cadence and feeds the samples to the run's estimator and to a
:class:`~repro.network.measurement.BandwidthMeasurementLog`.

Three pieces:

* :class:`PeriodicEvent` — the base class: an interval, a firing window,
  and a tie-break priority relative to the request stream.
* :class:`BandwidthRemeasurement` — one periodic probe stream for one
  cache-to-server path, drawing from its own random generator so the
  request stream's bandwidth draws are untouched (this is what keeps the
  no-auxiliary-event replay bit-identical across all paths).
* :class:`AuxiliarySchedule` — a deterministic merge structure that can
  either register its events on the discrete-event engine (the classic
  event-calendar path) or hand them to the simulator's columnar event loop,
  which merges them with the numpy request columns by ``(time, priority)``
  without boxing a single ``Request``.

Cadence is configured through :class:`RemeasurementConfig`, carried on
:attr:`repro.sim.config.SimulationConfig.remeasurement`; see
``docs/events.md`` for the full semantics and a worked example.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.network.measurement import BandwidthMeasurementLog, PassiveEstimator
    from repro.network.path import NetworkPath
    from repro.network.topology import DeliveryTopology
    from repro.sim.engine import SimulationEngine

#: Entropy tag mixed into the re-measurement generator's seed so its stream
#: never collides with the request stream's (which is seeded with the bare
#: config seed).
_REMEASUREMENT_STREAM_TAG = 0x52454D


@dataclass(frozen=True)
class RemeasurementConfig:
    """Cadence configuration for periodic bandwidth re-measurement.

    Attributes
    ----------
    interval:
        Default seconds between successive re-measurements of each path.
        The first measurement of a path fires one interval after
        ``start_time`` (a probe takes one interval to produce its first
        answer), then every ``interval`` seconds until ``end_time``.
    per_path_intervals:
        Per-path cadence overrides, keyed by origin-server id.  Paths not
        listed use ``interval``.
    probing_clients:
        Number of independent per-client probe streams per path.  Client
        ``k`` of ``n`` fires at phase offset ``interval * (k + 1) / n``, so
        several clients probing the same path interleave evenly instead of
        stampeding; the effective per-path cadence is ``interval / n``.
    paths:
        When given, only these origin-server ids are re-measured; ``None``
        (default) measures every path in the topology.
    start_time, end_time:
        Firing window in simulation seconds.  Defaults (``None``) span the
        replayed trace: measurements start at the trace's first timestamp
        and stop at its last.  A cadence longer than the window simply
        never fires.
    seed:
        Extra entropy mixed into the re-measurement random stream (on top
        of the simulation seed), so ablations can redraw the probe noise
        without disturbing the request stream.
    priority:
        Tie-break against requests that share a timestamp: negative fires
        before the request, positive after.  Zero is reserved for the
        request stream and rejected.
    """

    interval: float
    per_path_intervals: Mapping[int, float] = field(default_factory=dict)
    probing_clients: int = 1
    paths: Optional[Sequence[int]] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    seed: int = 0
    priority: int = -1

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(
                f"remeasurement interval must be positive, got {self.interval}"
            )
        for server_id, interval in self.per_path_intervals.items():
            if interval <= 0:
                raise ConfigurationError(
                    f"remeasurement interval for server {server_id} must be "
                    f"positive, got {interval}"
                )
        if self.probing_clients <= 0:
            raise ConfigurationError(
                f"probing_clients must be positive, got {self.probing_clients}"
            )
        if self.priority == 0:
            raise ConfigurationError(
                "remeasurement priority 0 is reserved for the request stream; "
                "use a negative (fire first) or positive (fire last) value"
            )
        if (
            self.start_time is not None
            and self.end_time is not None
            and self.end_time < self.start_time
        ):
            raise ConfigurationError(
                f"remeasurement window is empty: end_time {self.end_time} "
                f"precedes start_time {self.start_time}"
            )

    def interval_for(self, server_id: int) -> float:
        """Cadence for one path: the per-path override or the default."""
        return float(self.per_path_intervals.get(server_id, self.interval))


class PeriodicEvent:
    """A typed auxiliary event that fires every ``interval`` seconds.

    Subclasses implement :meth:`fire`.  The event owns its own clock state
    (``next_time``) so the same instance drives both replay paths: the
    discrete-event engine re-schedules it after each firing, and the
    columnar event loop keeps it on a merge heap.

    ``priority`` orders the event against requests sharing its timestamp
    (negative fires before the request, positive after); zero is reserved
    for the request stream so the merge is never ambiguous.
    """

    __slots__ = ("interval", "next_time", "end_time", "priority")

    def __init__(
        self,
        interval: float,
        first_time: float,
        end_time: float,
        priority: int = -1,
    ):
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        if priority == 0:
            raise ConfigurationError(
                "priority 0 is reserved for the request stream"
            )
        self.interval = float(interval)
        self.next_time = float(first_time)
        self.end_time = float(end_time)
        self.priority = int(priority)

    def fire(self, now: float) -> None:
        """Perform the event's work at simulation time ``now``."""
        raise NotImplementedError

    def advance(self) -> Optional[float]:
        """Move to the next firing time; ``None`` once past ``end_time``."""
        self.next_time += self.interval
        if self.next_time > self.end_time:
            return None
        return self.next_time


class BandwidthRemeasurement(PeriodicEvent):
    """Periodically re-measure one cache-to-server path's bandwidth.

    Each firing consumes one sample from the path's bandwidth distribution
    — the base bandwidth modulated by the path's variability model, exactly
    what a completed probe transfer would have observed — records it in the
    run's :class:`~repro.network.measurement.BandwidthMeasurementLog`, and
    feeds it to the :class:`~repro.network.measurement.PassiveEstimator`
    (when the run uses passive bandwidth knowledge), so estimator-driven
    policies see bandwidth shifts that happen *between* requests.

    Samples are pre-drawn in small batches
    (:meth:`~repro.network.path.NetworkPath.sample_observed`), so a firing
    usually costs a list index instead of a size-1 numpy draw; batch
    refills happen in firing order from the stream's own generator, so
    results stay deterministic and identical across replay paths.  The
    event never draws from the request stream's generator: with
    re-measurement disabled the request draws are untouched, which is what
    keeps all replay paths bit-identical in that case.
    """

    __slots__ = ("path", "estimator", "log", "rng", "listener", "_samples", "_sample_pos")

    #: Samples pre-drawn per batch refill; bounded so short-lived streams
    #: do not waste draws (the stream rng is private, so overdraw is
    #: harmless) while long-lived ones amortise the numpy call.
    PROBE_BATCH = 32

    def __init__(
        self,
        path: "NetworkPath",
        interval: float,
        first_time: float,
        end_time: float,
        rng: np.random.Generator,
        estimator: Optional["PassiveEstimator"] = None,
        log: Optional["BandwidthMeasurementLog"] = None,
        priority: int = -1,
        listener: Optional["ReactiveRekeyer"] = None,
    ):
        super().__init__(interval, first_time, end_time, priority)
        self.path = path
        self.estimator = estimator
        self.log = log
        self.rng = rng
        self.listener = listener
        self._samples: List[float] = []
        self._sample_pos = 0

    def fire(self, now: float) -> None:
        """Feed the next bandwidth sample to the log and the estimator."""
        pos = self._sample_pos
        if pos >= len(self._samples):
            self._samples = self.path.sample_observed(
                self.rng, self.PROBE_BATCH
            ).tolist()
            pos = 0
        sample = self._samples[pos]
        self._sample_pos = pos + 1
        server_id = self.path.server_id
        if self.log is not None:
            self.log.record(now, server_id, sample)
        if self.estimator is not None:
            listener = self.listener
            if listener is not None:
                # The anchor must seed from the estimate the policy actually
                # keyed at, i.e. the value *before* this sample lands — so
                # the very first probe can already trigger a re-key.
                prior = self.estimator.estimate(server_id)
                self.estimator.observe(server_id, sample)
                listener.notify(now, server_id, prior)
            else:
                self.estimator.observe(server_id, sample)


class ReactiveRekeyer:
    """Threshold-gated bridge from bandwidth-belief shifts to the policy.

    Passive estimation updates a path's believed bandwidth the moment a
    sample lands — a periodic re-measurement probe or an ordinary request's
    transfer — but a policy's *heap keys* only refresh when the next
    request happens to touch an object on that path: stale keys can
    mis-order evictions for exactly the cold servers measurement exists to
    cover.  The rekeyer closes that window.  After every sample it compares
    the path's new believed value against the value the policy was last
    re-keyed at (the *anchor*, seeded from the estimate the policy actually
    keyed at before the first sample, so a first sample of any magnitude
    can already trigger) and, when the relative shift exceeds
    ``threshold``, calls
    :meth:`~repro.core.policies.base.CachePolicy.on_bandwidth_shift` so the
    policy re-keys the affected heap entries immediately —
    generation-keyed, reusing the existing lazy-invalidation/compaction
    machinery.

    Two notification sources share the machinery:

    * **probe-driven** — :class:`BandwidthRemeasurement` firings call
      :meth:`notify` with no group (the origin view);
    * **passive-driven** — with
      :attr:`~repro.sim.config.SimulationConfig.reactive_passive` enabled,
      every replay loop calls :meth:`observe_request` after the request's
      estimator update, tagged with the requesting client group.

    All replay paths process requests (and fire probes) in the same order,
    so reactive runs stay bit-identical across them (asserted in
    ``tests/test_sim_reactive.py``).  Churn is bounded two ways:

    * ``hysteresis`` — after a re-key the shifted view is *disarmed*; it
      re-arms only once its believed value re-enters the band
      ``|believed - anchor| <= hysteresis * anchor``, so an estimate
      oscillating between two distant values cannot re-key on every swing;
    * ``rekey_cap`` — a hard per-server budget of re-keys per run; shifts
      past the budget are counted in ``suppressed`` instead of re-keying.

    Anchors and caps are kept **per client group** (``docs/clients.md``):
    a request from group ``g`` keys the heap at
    ``min(estimate, group_caps[g])``, so each group's view is compared
    against its own cap and its own anchor — a single global cap (the old
    behaviour, still expressible as ``bandwidth_cap=``) cannot represent
    what a slower group's requests actually keyed at.  With
    ``group_estimation`` enabled the group views read the estimator's
    ``(server, group)`` delivered-bandwidth estimates, so a last-mile
    degradation invisible to the origin estimate still re-keys.  Re-keys
    themselves happen at the estimate capped to the *largest* group base —
    the most any request believes.

    ``shifts`` counts threshold crossings that re-keyed,
    ``entries_rekeyed`` the heap entries re-pushed, ``suppressed`` the
    crossings the per-server cap swallowed, and ``rekeys_by_server`` the
    per-server re-key counts the cap bounds.
    """

    __slots__ = (
        "policy",
        "estimator",
        "threshold",
        "hysteresis",
        "rekey_cap",
        "group_caps",
        "group_estimation",
        "shifts",
        "entries_rekeyed",
        "suppressed",
        "rekeys_by_server",
        "trace",
        "_max_cap",
        "_anchors",
        "_disarmed",
    )

    def __init__(
        self,
        policy,
        estimator: "PassiveEstimator",
        threshold: float,
        bandwidth_cap: Optional[float] = None,
        group_caps: Optional[Sequence[float]] = None,
        hysteresis: Optional[float] = None,
        rekey_cap: Optional[int] = None,
        group_estimation: bool = False,
    ):
        if threshold <= 0:
            raise ConfigurationError(
                f"reactive threshold must be positive, got {threshold}"
            )
        if bandwidth_cap is not None:
            if bandwidth_cap <= 0:
                raise ConfigurationError(
                    f"bandwidth_cap must be positive, got {bandwidth_cap}"
                )
            if group_caps is not None:
                raise ConfigurationError(
                    "give either the legacy single bandwidth_cap or per-group "
                    "group_caps, not both"
                )
            group_caps = (bandwidth_cap,)
        if group_caps is not None:
            group_caps = tuple(float(cap) for cap in group_caps)
            if not group_caps:
                raise ConfigurationError("group_caps must be non-empty when given")
            for cap in group_caps:
                if cap <= 0:
                    raise ConfigurationError(
                        f"group caps must be positive, got {cap}"
                    )
        if hysteresis is not None and not 0.0 < hysteresis <= threshold:
            raise ConfigurationError(
                f"hysteresis must be in (0, threshold={threshold}], got {hysteresis}"
            )
        if rekey_cap is not None and rekey_cap <= 0:
            raise ConfigurationError(
                f"rekey_cap must be positive, got {rekey_cap}"
            )
        self.policy = policy
        self.estimator = estimator
        self.threshold = float(threshold)
        self.hysteresis = hysteresis
        self.rekey_cap = rekey_cap
        self.group_caps = group_caps
        self.group_estimation = bool(group_estimation)
        self.shifts = 0
        self.entries_rekeyed = 0
        self.suppressed = 0
        self.rekeys_by_server: Dict[int, int] = {}
        #: Optional :class:`repro.obs.tracing.TraceSink` the simulator
        #: attaches for the duration of one traced run; when set, every
        #: re-key emits an info-level ``rekey`` event.
        self.trace = None
        max_cap = max(group_caps) if group_caps else None
        self._max_cap = None if max_cap == float("inf") else max_cap
        #: Anchors nested per server: ``{server_id: {group_id: anchor}}``
        #: with ``None`` as the group of the origin (probe-driven) view.
        #: Nesting keeps a trigger's re-anchor sweep O(that server's views)
        #: instead of O(every view of every server).
        self._anchors: Dict[int, Dict[Optional[int], float]] = {}
        #: Views waiting to re-enter the hysteresis band before they may
        #: trigger again (only populated when ``hysteresis`` is set).
        self._disarmed: Dict[int, Dict[Optional[int], bool]] = {}

    @property
    def bandwidth_cap(self) -> Optional[float]:
        """Largest believed bandwidth any request holds (legacy view)."""
        return self._max_cap

    def _cap_for(self, group_id: Optional[int]) -> Optional[float]:
        """The believed-bandwidth ceiling of one view (``None`` = uncapped)."""
        if self.group_caps is None:
            return None
        if group_id is None:
            return self._max_cap
        cap = self.group_caps[group_id % len(self.group_caps)]
        return None if cap == float("inf") else cap

    def anchor_for(
        self, server_id: int, group_id: Optional[int] = None
    ) -> Optional[float]:
        """The believed value a view was last re-anchored at (test hook).

        ``None`` while the view has never been touched.  Together with
        :meth:`disarmed_views` this lets fault-storm tests
        (``tests/test_sim_faults.py``) assert the hysteresis state machine
        from outside: an outage collapses the anchor, recovery re-arms the
        view, and the anchor follows.
        """
        views = self._anchors.get(server_id)
        return None if views is None else views.get(group_id)

    def disarmed_views(self, server_id: int) -> Tuple[Optional[int], ...]:
        """Views of a server currently disarmed by hysteresis (test hook).

        Returns the group ids (``None`` = the origin / probe-driven view)
        whose estimates must re-enter the hysteresis band before they may
        trigger again.  Empty when hysteresis is off or everything is
        armed.
        """
        disarmed = self._disarmed.get(server_id)
        if not disarmed:
            return ()
        return tuple(group for group, flag in disarmed.items() if flag)

    def kernel_hooks(self) -> dict:
        """The passive-stage hook for :mod:`repro.sim.kernel`.

        ``observe_request`` is called after every request's estimator
        update (the kernel's *passive* stage) when the run is
        passive-driven reactive, in the same position on every replay
        driver.
        """
        return {"observe_request": self.observe_request}

    def observe_request(
        self,
        now: float,
        server_id: int,
        group_id: Optional[int],
        prior_estimate: float,
        delivered: float,
    ) -> None:
        """Passive-driven notification after one request's estimator update.

        ``prior_estimate`` is the origin estimate the request's policy
        decision keyed at (read *before* the request's sample was
        observed); ``delivered`` is the throughput the request actually
        experienced (bottleneck of both hops).  With ``group_estimation``
        the delivered sample feeds the estimator's ``(server, group)`` mode
        and the group view is compared on its own estimate trajectory.
        """
        if group_id is not None and self.group_estimation:
            if self.estimator.group_sample_count(server_id, group_id) > 0:
                prior = self.estimator.estimate_group(server_id, group_id)
            else:
                # First sample for this pair: estimate_group would fall
                # back to the *post-sample* origin estimate (the loops
                # observe the origin before notifying), which would seed
                # the anchor at the new belief and swallow the first shift
                # — the very bug the anchor-seeding fix removed.  The
                # pre-sample origin estimate is what this view keyed at.
                prior = prior_estimate
            self.estimator.observe_group(server_id, group_id, delivered)
            self.notify(now, server_id, prior, group_id=group_id)
        else:
            self.notify(now, server_id, prior_estimate, group_id=group_id)

    def notify(
        self,
        now: float,
        server_id: int,
        prior_estimate: float,
        group_id: Optional[int] = None,
    ) -> None:
        """Consider re-keying after one sample landed on one view.

        ``prior_estimate`` seeds the view's anchor on first contact: it
        must be the estimate the policy's existing heap keys were built at
        (the value *before* the sample), not the post-sample estimate —
        seeding from the latter silently swallows a first shift of any
        magnitude.
        """
        if group_id is not None and self.group_estimation:
            estimate = self.estimator.estimate_group(server_id, group_id)
        else:
            estimate = self.estimator.estimate(server_id)
        cap = self._cap_for(group_id)
        believed = estimate if cap is None or estimate <= cap else cap
        views = self._anchors.get(server_id)
        if views is None:
            views = self._anchors[server_id] = {}
        anchor = views.get(group_id)
        if anchor is None:
            prior = prior_estimate
            if cap is not None and prior > cap:
                prior = cap
            views[group_id] = anchor = prior
        disarmed = self._disarmed.get(server_id)
        if disarmed is not None and disarmed.get(group_id):
            if abs(believed - anchor) <= self.hysteresis * anchor:
                disarmed[group_id] = False
            return
        if abs(believed - anchor) <= self.threshold * anchor:
            return
        if (
            self.rekey_cap is not None
            and self.rekeys_by_server.get(server_id, 0) >= self.rekey_cap
        ):
            self.suppressed += 1
            return
        self.shifts += 1
        self.rekeys_by_server[server_id] = (
            self.rekeys_by_server.get(server_id, 0) + 1
        )
        rekey_bandwidth = estimate
        if self._max_cap is not None and rekey_bandwidth > self._max_cap:
            rekey_bandwidth = self._max_cap
        rekeyed = self.policy.on_bandwidth_shift(server_id, rekey_bandwidth, now)
        self.entries_rekeyed += rekeyed
        if self.trace is not None:
            self.trace.emit(
                "info",
                "rekey",
                now,
                server=server_id,
                group=group_id,
                anchor=anchor,
                believed=believed,
                entries=rekeyed,
            )
        # Every tracked view of this server was just re-keyed: re-anchor
        # them all at their newly believed values, and (under hysteresis)
        # disarm them until their estimates settle back into the band.
        views[group_id] = believed
        for other_group in views:
            if other_group == group_id:
                continue
            if other_group is not None and self.group_estimation:
                other_estimate = self.estimator.estimate_group(
                    server_id, other_group
                )
            else:
                other_estimate = self.estimator.estimate(server_id)
            other_cap = self._cap_for(other_group)
            if other_cap is not None and other_estimate > other_cap:
                other_estimate = other_cap
            views[other_group] = other_estimate
        if self.hysteresis is not None:
            self._disarmed[server_id] = {group: True for group in views}


class AuxiliarySchedule:
    """A deterministic collection of :class:`PeriodicEvent` streams.

    The schedule is the bridge between typed auxiliary events and the two
    event-capable replay paths:

    * :meth:`schedule_into` registers every stream on a
      :class:`~repro.sim.engine.SimulationEngine` (the classic
      event-calendar path); each firing re-schedules the next one.
    * :meth:`begin` / :meth:`fire_before` / :meth:`drain` expose the same
      streams as a ``(time, priority, sequence)`` merge heap for the
      simulator's columnar event loop, which interleaves them with the
      trace's numpy columns directly.

    Both drivers fire the same events in the same order (ties broken by
    priority, then by scheduling order), so the two paths stay
    bit-identical; :attr:`fired` counts total firings either way.
    """

    def __init__(self, events: Sequence[PeriodicEvent] = ()):
        self._events: List[PeriodicEvent] = list(events)
        self._heap: List[Tuple[float, int, int, PeriodicEvent]] = []
        self._counter = itertools.count()
        self.fired = 0

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    @property
    def events(self) -> List[PeriodicEvent]:
        """The registered event streams (in scheduling order)."""
        return list(self._events)

    # ------------------------------------------------------------------
    # Driver 1: the discrete-event engine (classic event-calendar path).
    # ------------------------------------------------------------------
    def schedule_into(self, engine: "SimulationEngine") -> None:
        """Register every stream's next firing on the engine."""
        for event in self._events:
            if event.next_time <= event.end_time:
                engine.schedule(
                    event.next_time, self._engine_fire, event, priority=event.priority
                )

    def _engine_fire(self, engine: "SimulationEngine", event: PeriodicEvent) -> None:
        event.fire(engine.now)
        self.fired += 1
        next_time = event.advance()
        if next_time is not None:
            engine.schedule(next_time, self._engine_fire, event, priority=event.priority)

    # ------------------------------------------------------------------
    # Driver 2: the columnar event loop (merge heap by (time, priority)).
    # ------------------------------------------------------------------
    def begin(self) -> List[Tuple[float, int, int, PeriodicEvent]]:
        """Build the merge heap from every stream's next firing time.

        Returns the heap list itself so the replay loop can test "any event
        due before this request?" with one truthiness check + tuple compare
        instead of a method call per request — the schedule is usually
        empty or quiescent between firings.
        """
        self._heap = [
            (event.next_time, event.priority, next(self._counter), event)
            for event in self._events
            if event.next_time <= event.end_time
        ]
        heapq.heapify(self._heap)
        return self._heap

    def fire_before(self, time: float, priority: int = 0) -> None:
        """Fire every event ordered before ``(time, priority)``.

        The columnar loop calls this with each request's timestamp (and the
        request stream's priority, 0), reproducing exactly the interleaving
        the discrete-event engine would have produced.
        """
        heap = self._heap
        while heap and (heap[0][0], heap[0][1]) < (time, priority):
            fire_time, event_priority, _, event = heapq.heappop(heap)
            event.fire(fire_time)
            self.fired += 1
            next_time = event.advance()
            if next_time is not None:
                heapq.heappush(
                    heap, (next_time, event_priority, next(self._counter), event)
                )

    def drain(self) -> None:
        """Fire everything left on the heap (events after the last request)."""
        self.fire_before(float("inf"), priority=0)


def build_remeasurement_events(
    config: RemeasurementConfig,
    topology: "DeliveryTopology",
    estimator: Optional["PassiveEstimator"],
    log: Optional["BandwidthMeasurementLog"],
    trace_start: float,
    trace_end: float,
    base_seed: int,
    listener: Optional[ReactiveRekeyer] = None,
) -> List[BandwidthRemeasurement]:
    """Expand a :class:`RemeasurementConfig` into concrete event streams.

    One :class:`BandwidthRemeasurement` stream is built per ``(path,
    probing client)`` pair, phase-staggered so several clients probing the
    same path interleave evenly.  All streams share one random generator
    seeded independently of the simulation's request stream (mixing
    ``base_seed``, ``config.seed``, and a fixed stream tag), and firing
    order is deterministic, so results are reproducible across replay paths
    and process boundaries.  ``listener`` (a :class:`ReactiveRekeyer`) is
    attached to every stream so estimate shifts can re-key the policy.
    """
    start = config.start_time if config.start_time is not None else float(trace_start)
    end = config.end_time if config.end_time is not None else float(trace_end)
    known = set(topology.paths.server_ids())
    unknown_overrides = sorted(set(config.per_path_intervals) - known)
    if unknown_overrides:
        raise ConfigurationError(
            "remeasurement per_path_intervals names unknown server ids: "
            f"{unknown_overrides[:5]}"
        )
    if config.paths is not None:
        wanted = set(int(server_id) for server_id in config.paths)
        unknown = sorted(wanted - known)
        if unknown:
            raise ConfigurationError(
                f"remeasurement config names unknown server ids: {unknown[:5]}"
            )
    else:
        wanted = None

    rng = np.random.default_rng(
        (_REMEASUREMENT_STREAM_TAG, base_seed & 0xFFFFFFFF, config.seed & 0xFFFFFFFF)
    )
    events: List[BandwidthRemeasurement] = []
    clients = config.probing_clients
    for server_id in topology.paths.server_ids():
        if wanted is not None and server_id not in wanted:
            continue
        path = topology.paths.get(server_id)
        interval = config.interval_for(server_id)
        for client_index in range(clients):
            first = start + interval * (client_index + 1) / clients
            if first > end:
                continue  # cadence longer than the window: never fires
            events.append(
                BandwidthRemeasurement(
                    path=path,
                    interval=interval,
                    first_time=first,
                    end_time=end,
                    rng=rng,
                    estimator=estimator,
                    log=log,
                    priority=config.priority,
                    listener=listener,
                )
            )
    return events
