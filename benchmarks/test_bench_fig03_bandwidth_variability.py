"""Figure 3 — Sample-to-mean bandwidth ratio distribution from the cache logs.

Regenerates the per-path sample-to-mean ratio statistics: roughly 70% of the
samples fall within 0.5–1.5 times the path mean, with a heavy tail.
"""

from benchmarks.conftest import report, run_once
from repro.analysis.experiments import experiment_fig3_bandwidth_variability


def test_fig3_bandwidth_variability(benchmark):
    result = run_once(
        benchmark, experiment_fig3_bandwidth_variability, num_records=20_000, seed=0
    )
    in_band = result.data["fraction_in_half_band"]
    cov = result.data["coefficient_of_variation"]
    report(
        benchmark,
        result,
        extra={"fraction_in_half_band": in_band, "coefficient_of_variation": cov},
    )
    # Paper: "in about 70% of the cases the sample bandwidth is 0.5-1.5x the mean".
    assert 0.55 < in_band < 0.85
    # The NLANR model is the high-variability one.
    assert cov > 0.4
    assert result.data["max_ratio"] > 1.5
