"""Columnar trace subsystem: numpy-native traces, shared-memory transport,
and real access-log ingestion.

Three modules:

* :mod:`repro.trace.columnar` — :class:`ColumnarTrace`, a request trace
  stored as parallel numpy arrays with the full ``RequestTrace`` protocol,
  zero-copy slicing, CSV/``.npz`` round-trips, and multi-day segment
  stitching (:meth:`ColumnarTrace.concat`, ``repro ingest --append``),
* :mod:`repro.trace.shm` — publish a columnar trace once into POSIX shared
  memory and attach zero-copy from worker processes
  (used by :mod:`repro.analysis.parallel` to stop re-pickling traces),
* :mod:`repro.trace.ingest` — streaming Squid / Common-Log-Format access
  log adapters that emit columnar traces, simulation-ready workloads, and
  :class:`~repro.network.loganalysis.ProxyLogAnalyzer` substrates.

See ``docs/traces.md`` for the formats and transport semantics.
"""

from repro.trace.columnar import COLUMN_DTYPES, ColumnarTrace
from repro.trace.ingest import (
    LOG_FORMATS,
    AccessLogRecord,
    IngestResult,
    IngestSummary,
    detect_log_format,
    ingest_access_log,
    iter_access_records,
    parse_clf_line,
    parse_squid_line,
)
from repro.trace.shm import (
    SharedTrace,
    SharedTraceDescriptor,
    attach_trace,
    publish_trace,
    shm_available,
)

__all__ = [
    "COLUMN_DTYPES",
    "AccessLogRecord",
    "ColumnarTrace",
    "IngestResult",
    "IngestSummary",
    "LOG_FORMATS",
    "SharedTrace",
    "SharedTraceDescriptor",
    "attach_trace",
    "detect_log_format",
    "ingest_access_log",
    "iter_access_records",
    "parse_clf_line",
    "parse_squid_line",
    "publish_trace",
    "shm_available",
]
