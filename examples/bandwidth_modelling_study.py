#!/usr/bin/env python
"""Scenario: building the bandwidth models a network-aware cache needs.

Section 3.1 of the paper derives its bandwidth models from proxy logs and
live path measurements; Section 2.7 discusses how a deployed cache would
measure bandwidth (actively, by probing, or passively, from past transfers).
This script exercises that whole substrate:

1. synthesise a proxy access log and run the paper's analysis on it
   (filter misses > 200 KB, histogram the throughput, Figure 2/3 statistics),
2. generate the measured-path time series of Figure 4 and compare their
   variability with the cache-log model,
3. show how active probing (PFTK TCP-throughput model) and passive EWMA
   estimation track a path whose loss rate changes, and
4. smooth a synthetic VBR stream with the optimal work-ahead algorithm, the
   preprocessing step the paper assumes for VBR objects.

Run with::

    python examples/bandwidth_modelling_study.py
"""

from __future__ import annotations

import numpy as np

from repro.network.loganalysis import ProxyLogAnalyzer, SyntheticProxyLog
from repro.network.measurement import ActiveProber, PassiveEstimator, PathConditions, pftk_throughput
from repro.network.variability import MEASURED_PATH_PROFILES, MeasuredPathVariability, NLANRRatioVariability
from repro.streaming.media import synthetic_vbr_stream
from repro.streaming.smoothing import optimal_smoothing, peak_rate, rate_variability


def log_analysis_section() -> None:
    print("1. Proxy-log analysis (Figure 2 / Figure 3)")
    log = SyntheticProxyLog(num_servers=200, num_records=30_000, seed=0)
    analysis = ProxyLogAnalyzer(min_object_kb=200.0).analyze(log.generate())
    print(f"   transfers surviving the filters : {analysis.samples.size}")
    print(f"   share below  50 KB/s            : {analysis.fraction_below(50.0):.0%} (paper: 37%)")
    print(f"   share below 100 KB/s            : {analysis.fraction_below(100.0):.0%} (paper: 56%)")
    stats = analysis.ratio_statistics()
    print(f"   sample-to-mean ratio in 0.5-1.5 : {stats['fraction_in_half_band']:.0%} (paper: ~70%)")
    print(f"   ratio coefficient of variation  : {stats['coefficient_of_variation']:.2f}\n")


def measured_paths_section() -> None:
    print("2. Measured Internet paths (Figure 4)")
    rng = np.random.default_rng(1)
    nlanr_cov = NLANRRatioVariability().coefficient_of_variation()
    for key, profile in MEASURED_PATH_PROFILES.items():
        model = MeasuredPathVariability(key)
        _, bandwidth = model.bandwidth_time_series(rng=rng)
        cov = bandwidth.std() / bandwidth.mean()
        print(f"   {profile.name:34} mean {bandwidth.mean():6.1f} KB/s  "
              f"CoV {cov:.2f} (cache-log model: {nlanr_cov:.2f})")
    print()


def measurement_section() -> None:
    print("3. Active probing vs passive estimation (Section 2.7)")
    rng = np.random.default_rng(2)
    prober = ActiveProber(probe_count=50)
    estimator = PassiveEstimator(smoothing=0.3)
    # The path's loss rate doubles half way through the observation window.
    phases = [(0.01, 20), (0.04, 20)]
    for loss_rate, transfers in phases:
        conditions = PathConditions(rtt=0.12, loss_rate=loss_rate)
        truth = pftk_throughput(conditions)
        probe = prober.probe(conditions, rng)
        for _ in range(transfers):
            observed = max(truth * (1.0 + rng.normal(0.0, 0.15)), 1.0)
            estimator.observe(42, observed)
        print(f"   loss {loss_rate:.0%}: model throughput {truth:6.1f} KB/s, "
              f"active probe {probe:6.1f} KB/s, passive estimate {estimator.estimate(42):6.1f} KB/s")
    print()


def smoothing_section() -> None:
    print("4. Optimal smoothing of a VBR stream (Section 2.2 preprocessing)")
    stream = synthetic_vbr_stream(duration=120.0, mean_rate=48.0, burstiness=0.7, seed=3)
    raw_cov = stream.frame_sizes.std() / stream.frame_sizes.mean()
    print(f"   raw stream: mean {stream.mean_rate:.1f} KB/s, peak {stream.peak_rate:.1f} KB/s, "
          f"frame-size CoV {raw_cov:.2f}")
    for buffer_kb in (64.0, 512.0, 4096.0):
        schedule = optimal_smoothing(stream, buffer_kb=buffer_kb)
        print(f"   client buffer {buffer_kb:6.0f} KB -> peak {peak_rate(schedule):6.1f} KB/s, "
              f"rate CoV {rate_variability(schedule):.3f}, {schedule.num_runs} constant-rate runs")
    print()


def main() -> None:
    log_analysis_section()
    measured_paths_section()
    measurement_section()
    smoothing_section()
    print("These models are exactly what the simulator consumes: the Figure 2")
    print("distribution assigns per-server base bandwidth, the Figure 3/4 models")
    print("modulate it per request, and the measurement classes stand in for the")
    print("cache's bandwidth-estimation machinery.")


if __name__ == "__main__":
    main()
