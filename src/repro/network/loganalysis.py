"""Synthetic proxy-log substrate and the Section 3.1 analysis pipeline.

The paper derives its bandwidth models from nine days of NLANR proxy cache
logs (site UC, April 2001).  Those logs are proprietary and no longer
distributed, so this module substitutes a synthetic equivalent that
exercises the same code path:

* :class:`SyntheticProxyLog` generates HTTP transfer records (URL, size,
  duration, cache status) whose per-transfer throughput follows the
  published Figure 2 distribution and whose per-path variability follows
  the Figure 3 sample-to-mean model.
* :class:`ProxyLogAnalyzer` reproduces the paper's analysis: keep only
  *missed* requests for objects larger than 200 KB, compute throughput as
  size / duration, build the bandwidth histogram and CDF (Figure 2), and
  compute per-path sample-to-mean ratio statistics (Figure 3).

The substitution is behaviour-preserving because the simulation only ever
consumes the *distributions* this pipeline produces, and those distributions
are published in the paper.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, TraceFormatError
from repro.network.distributions import (
    BandwidthDistribution,
    EmpiricalBandwidthDistribution,
    NLANRBandwidthDistribution,
)
from repro.network.variability import (
    BandwidthVariabilityModel,
    NLANRRatioVariability,
    empirical_ratio_statistics,
)


@dataclass(frozen=True)
class TransferRecord:
    """One HTTP transfer as it would appear in a proxy access log.

    Attributes
    ----------
    timestamp:
        Completion time of the transfer (seconds since the log start).
    server_id:
        Anonymised origin-server identifier.
    size_kb:
        Bytes transferred, in KB.
    duration_s:
        Connection duration in seconds.
    cache_hit:
        Whether the proxy served the object itself.  The paper's analysis
        discards hits because only misses reveal the server path bandwidth.
    """

    timestamp: float
    server_id: int
    size_kb: float
    duration_s: float
    cache_hit: bool

    @property
    def throughput(self) -> float:
        """Observed throughput in KB/s (size divided by duration)."""
        if self.duration_s <= 0:
            return 0.0
        return self.size_kb / self.duration_s


class SyntheticProxyLog:
    """Generate synthetic proxy-log transfer records.

    Each origin server is assigned a mean path bandwidth from ``base``; each
    transfer to that server observes the mean multiplied by a ratio from
    ``variability``.  Object sizes follow a Pareto-like heavy tail (most Web
    transfers are small, a minority exceed the 200 KB threshold the paper's
    analysis uses), and a configurable fraction of requests are cache hits.
    """

    def __init__(
        self,
        num_servers: int = 200,
        num_records: int = 20_000,
        base: Optional[BandwidthDistribution] = None,
        variability: Optional[BandwidthVariabilityModel] = None,
        hit_fraction: float = 0.3,
        large_object_fraction: float = 0.25,
        seed: int = 0,
    ):
        if num_servers <= 0 or num_records <= 0:
            raise ConfigurationError("num_servers and num_records must be positive")
        if not 0.0 <= hit_fraction < 1.0:
            raise ConfigurationError(f"hit_fraction must be in [0, 1), got {hit_fraction}")
        if not 0.0 < large_object_fraction <= 1.0:
            raise ConfigurationError(
                f"large_object_fraction must be in (0, 1], got {large_object_fraction}"
            )
        self.num_servers = int(num_servers)
        self.num_records = int(num_records)
        self.base = base or NLANRBandwidthDistribution()
        self.variability = variability or NLANRRatioVariability()
        self.hit_fraction = float(hit_fraction)
        self.large_object_fraction = float(large_object_fraction)
        self.seed = int(seed)

    def generate(self) -> List[TransferRecord]:
        """Generate the full list of transfer records."""
        rng = np.random.default_rng(self.seed)
        server_means = np.maximum(self.base.sample(self.num_servers, rng), 1.0)
        records: List[TransferRecord] = []
        timestamp = 0.0
        for _ in range(self.num_records):
            timestamp += float(rng.exponential(30.0))
            server_id = int(rng.integers(0, self.num_servers))
            is_hit = bool(rng.random() < self.hit_fraction)
            if rng.random() < self.large_object_fraction:
                # Large objects: 200 KB to several MB (Pareto tail).
                size_kb = 200.0 + float(rng.pareto(1.5)) * 400.0
            else:
                # Typical small Web objects: 1-200 KB.
                size_kb = float(rng.uniform(1.0, 200.0))
            ratio = float(self.variability.sample_ratio(rng, size=1)[0])
            throughput = max(server_means[server_id] * ratio, 0.5)
            duration_s = size_kb / throughput
            records.append(
                TransferRecord(
                    timestamp=timestamp,
                    server_id=server_id,
                    size_kb=size_kb,
                    duration_s=duration_s,
                    cache_hit=is_hit,
                )
            )
        return records

    @staticmethod
    def to_csv(records: Sequence[TransferRecord], path: Union[str, Path]) -> None:
        """Write records to a CSV file (for archival or external tools)."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["timestamp", "server_id", "size_kb", "duration_s", "cache_hit"])
            for record in records:
                writer.writerow(
                    [
                        record.timestamp,
                        record.server_id,
                        record.size_kb,
                        record.duration_s,
                        int(record.cache_hit),
                    ]
                )

    @staticmethod
    def from_csv(path: Union[str, Path]) -> List[TransferRecord]:
        """Read records previously written by :meth:`to_csv`."""
        path = Path(path)
        records: List[TransferRecord] = []
        with path.open("r", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            expected = ["timestamp", "server_id", "size_kb", "duration_s", "cache_hit"]
            if header != expected:
                raise TraceFormatError(f"{path}: expected header {expected}, got {header}")
            for line_number, row in enumerate(reader, start=2):
                if not row:
                    continue
                try:
                    records.append(
                        TransferRecord(
                            timestamp=float(row[0]),
                            server_id=int(row[1]),
                            size_kb=float(row[2]),
                            duration_s=float(row[3]),
                            cache_hit=bool(int(row[4])),
                        )
                    )
                except (ValueError, IndexError) as exc:
                    raise TraceFormatError(f"{path}:{line_number}: bad row {row!r}") from exc
        return records


@dataclass
class BandwidthAnalysis:
    """Output of the Section 3.1 log analysis."""

    #: Per-transfer throughput samples (KB/s) that passed the filters.
    samples: np.ndarray
    #: Histogram bin edges (KB/s), 4 KB/s slots as in Figure 2(a).
    histogram_edges: np.ndarray
    #: Histogram counts per bin.
    histogram_counts: np.ndarray
    #: Sample-to-mean ratios pooled over paths (Figure 3).
    ratios: np.ndarray

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(bandwidth, cumulative_fraction)`` arrays (Figure 2(b))."""
        total = self.histogram_counts.sum()
        if total == 0:
            return self.histogram_edges[1:], np.zeros(self.histogram_counts.size)
        cumulative = np.cumsum(self.histogram_counts) / total
        return self.histogram_edges[1:], cumulative

    def fraction_below(self, bandwidth: float) -> float:
        """Fraction of samples with throughput below ``bandwidth`` KB/s."""
        if self.samples.size == 0:
            return 0.0
        return float(np.mean(self.samples < bandwidth))

    def ratio_statistics(self) -> Dict[str, float]:
        """Coefficient of variation etc. of the pooled ratio samples."""
        return empirical_ratio_statistics(self.ratios)

    def to_distribution(self, bin_width: float = 4.0) -> EmpiricalBandwidthDistribution:
        """Turn the filtered samples into a sampleable bandwidth distribution."""
        return EmpiricalBandwidthDistribution(self.samples, bin_width=bin_width)


class ProxyLogAnalyzer:
    """Reproduce the paper's log-analysis methodology (Section 3.1)."""

    def __init__(self, min_object_kb: float = 200.0, bin_width: float = 4.0):
        if min_object_kb < 0:
            raise ConfigurationError(
                f"min_object_kb must be non-negative, got {min_object_kb}"
            )
        if bin_width <= 0:
            raise ConfigurationError(f"bin_width must be positive, got {bin_width}")
        self.min_object_kb = float(min_object_kb)
        self.bin_width = float(bin_width)

    def analyze(self, records: Iterable[TransferRecord]) -> BandwidthAnalysis:
        """Filter records and compute Figure 2/3 style statistics.

        Filters follow the paper: only cache *misses* (so the transfer was
        actually served by the origin server) and only objects at least
        ``min_object_kb`` large (long transfers measure bandwidth more
        accurately).
        """
        samples: List[float] = []
        per_server: Dict[int, List[float]] = {}
        for record in records:
            if record.cache_hit:
                continue
            if record.size_kb < self.min_object_kb:
                continue
            throughput = record.throughput
            if throughput <= 0:
                continue
            samples.append(throughput)
            per_server.setdefault(record.server_id, []).append(throughput)

        sample_array = np.asarray(samples, dtype=float)
        if sample_array.size == 0:
            raise ConfigurationError(
                "no transfer records survived the filters; "
                "generate a larger log or lower min_object_kb"
            )

        upper = max(float(sample_array.max()), self.bin_width)
        num_bins = int(np.ceil(upper / self.bin_width))
        edges = np.arange(0.0, (num_bins + 1) * self.bin_width, self.bin_width)
        counts, _ = np.histogram(sample_array, bins=edges)

        # Sample-to-mean ratios per path, pooled; paths with a single sample
        # carry no variability information and are skipped.
        ratios: List[float] = []
        for throughputs in per_server.values():
            if len(throughputs) < 2:
                continue
            mean = float(np.mean(throughputs))
            if mean <= 0:
                continue
            ratios.extend(t / mean for t in throughputs)
        ratio_array = np.asarray(ratios, dtype=float)
        if ratio_array.size == 0:
            ratio_array = np.ones(1)

        return BandwidthAnalysis(
            samples=sample_array,
            histogram_edges=edges,
            histogram_counts=counts.astype(float),
            ratios=ratio_array,
        )


def build_nlanr_like_models(
    num_servers: int = 200,
    num_records: int = 20_000,
    seed: int = 0,
) -> Tuple[EmpiricalBandwidthDistribution, Dict[str, float]]:
    """End-to-end helper: synthesise a log, analyse it, return the models.

    Returns the empirical bandwidth distribution (usable wherever a
    :class:`~repro.network.distributions.BandwidthDistribution` is expected)
    together with the ratio statistics, so callers can verify the synthetic
    pipeline reproduces the paper's published summary numbers.
    """
    log = SyntheticProxyLog(num_servers=num_servers, num_records=num_records, seed=seed)
    analysis = ProxyLogAnalyzer().analyze(log.generate())
    return analysis.to_distribution(), analysis.ratio_statistics()


def analyze_access_log(
    path: Union[str, Path],
    log_format: str = "auto",
    min_object_kb: float = 200.0,
    bin_width: float = 4.0,
) -> BandwidthAnalysis:
    """Run the Section 3.1 analysis on a **real** proxy access log.

    Bridges :func:`repro.trace.ingest.ingest_access_log` into
    :class:`ProxyLogAnalyzer`, making ingested Squid logs an alternative
    substrate to :class:`SyntheticProxyLog` — the resulting
    :class:`BandwidthAnalysis` feeds
    :meth:`BandwidthAnalysis.to_distribution` exactly like the synthetic
    pipeline.  Only formats that record transfer durations (Squid native)
    yield usable throughput samples; CLF records are filtered out by the
    analyzer because their throughput is unknown.
    """
    # Imported lazily: repro.trace.ingest imports TransferRecord from this
    # module, so a top-level import would be circular.
    from repro.trace.ingest import ingest_access_log

    result = ingest_access_log(path, log_format=log_format, include_hits=True)
    analyzer = ProxyLogAnalyzer(min_object_kb=min_object_kb, bin_width=bin_width)
    return analyzer.analyze(result.to_transfer_records())
