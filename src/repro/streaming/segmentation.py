"""Fine-grain segment maintenance for partially cached objects.

Section 2.7 notes that a deployed proxy has to maintain partial objects as
either *prefixes* or *fine-grain segments*.  The rest of the library models
the cached portion of an object as a single prefix byte-count (which is all
the paper's algorithms need); this module supplies the segment-level view a
real proxy would keep on disk:

* :class:`SegmentationScheme` turns a byte-count into a list of segments —
  either fixed-size or exponentially growing segments (the layout used by
  later segment-based caching systems, where segment ``k`` covers
  ``[2^(k-1), 2^k)`` base units), and
* :class:`SegmentedPrefix` tracks which segments of one object are resident,
  supports growing/trimming to match a policy's byte target, and reports
  the byte ranges a joint-delivery session must still fetch from the origin
  server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Segment:
    """One contiguous byte range of an object, ``[start, end)`` in KB."""

    index: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"invalid segment [{self.start}, {self.end}) at index {self.index}"
            )

    @property
    def size(self) -> float:
        """Segment length in KB."""
        return self.end - self.start


class SegmentationScheme:
    """Partition an object into segments.

    Parameters
    ----------
    base_segment_kb:
        Size of the first segment in KB.
    exponential:
        When True (the default) segment sizes double from one segment to the
        next — the layout that keeps per-object metadata logarithmic in the
        object size.  When False all segments have the base size.
    """

    def __init__(self, base_segment_kb: float = 256.0, exponential: bool = True):
        if base_segment_kb <= 0:
            raise ConfigurationError(
                f"base_segment_kb must be positive, got {base_segment_kb}"
            )
        self.base_segment_kb = float(base_segment_kb)
        self.exponential = bool(exponential)

    def segments(self, object_size_kb: float) -> List[Segment]:
        """The full segment list covering ``[0, object_size_kb)``."""
        if object_size_kb < 0:
            raise ConfigurationError(
                f"object_size_kb must be non-negative, got {object_size_kb}"
            )
        segments: List[Segment] = []
        start = 0.0
        size = self.base_segment_kb
        index = 0
        while start < object_size_kb:
            end = min(start + size, object_size_kb)
            segments.append(Segment(index=index, start=start, end=end))
            start = end
            index += 1
            if self.exponential:
                size *= 2.0
        return segments

    def segments_for_prefix(self, object_size_kb: float, prefix_kb: float) -> List[Segment]:
        """The segments fully or partially covered by a prefix of ``prefix_kb``."""
        prefix_kb = min(max(prefix_kb, 0.0), object_size_kb)
        return [seg for seg in self.segments(object_size_kb) if seg.start < prefix_kb]


class SegmentedPrefix:
    """Segment-level bookkeeping for one partially cached object.

    The class keeps the invariant that cached segments always form a prefix
    (segment ``k`` is only resident if all earlier segments are), which is
    what makes joint delivery with the origin server straightforward.
    """

    def __init__(self, object_size_kb: float, scheme: SegmentationScheme = None):
        if object_size_kb <= 0:
            raise ConfigurationError(
                f"object_size_kb must be positive, got {object_size_kb}"
            )
        self.object_size_kb = float(object_size_kb)
        self.scheme = scheme or SegmentationScheme()
        self._segments = self.scheme.segments(self.object_size_kb)
        self._resident = 0  # number of fully resident leading segments

    @property
    def resident_segments(self) -> List[Segment]:
        """The segments currently held by the cache."""
        return self._segments[: self._resident]

    @property
    def cached_bytes(self) -> float:
        """Total KB held (the sum of resident segment sizes)."""
        return sum(segment.size for segment in self.resident_segments)

    @property
    def total_segments(self) -> int:
        """Number of segments the whole object divides into."""
        return len(self._segments)

    def grow_to(self, target_kb: float) -> float:
        """Admit whole segments until at least ``target_kb`` KB are resident.

        Returns the actual number of KB resident afterwards (segment
        granularity means it can exceed the target).
        """
        if target_kb < 0:
            raise ConfigurationError(f"target_kb must be non-negative, got {target_kb}")
        target_kb = min(target_kb, self.object_size_kb)
        while self.cached_bytes < target_kb and self._resident < len(self._segments):
            self._resident += 1
        return self.cached_bytes

    def trim_to(self, target_kb: float) -> float:
        """Drop trailing segments until at most ``target_kb`` KB remain."""
        if target_kb < 0:
            raise ConfigurationError(f"target_kb must be non-negative, got {target_kb}")
        while self._resident > 0 and self.cached_bytes > target_kb:
            self._resident -= 1
        return self.cached_bytes

    def missing_ranges(self) -> List[Tuple[float, float]]:
        """Byte ranges (KB offsets) that must be fetched from the origin server."""
        cached = self.cached_bytes
        if cached >= self.object_size_kb:
            return []
        return [(cached, self.object_size_kb)]

    def holds_prefix(self, prefix_kb: float) -> bool:
        """Whether the resident segments cover at least ``prefix_kb`` KB."""
        return self.cached_bytes >= min(prefix_kb, self.object_size_kb) - 1e-9

    def metadata_entries(self) -> int:
        """How many segment records the proxy must track for this object.

        With exponential segmentation this is O(log(size)), the practical
        argument for that layout.
        """
        return len(self._segments)
