"""Network bandwidth modelling substrate.

The caching algorithms of the paper are *network-aware*: they key caching
decisions on the available bandwidth between the proxy cache and each origin
server.  This package provides everything network-related the evaluation
requires:

* :mod:`repro.network.distributions` — distributions of the base (average)
  bandwidth across paths, including the empirical NLANR-log model of Fig 2,
* :mod:`repro.network.variability` — models of how a single path's bandwidth
  varies over time (Figs 3 and 4),
* :mod:`repro.network.path` — the :class:`~repro.network.path.NetworkPath`
  abstraction combining a base bandwidth with a variability model,
* :mod:`repro.network.measurement` — active and passive bandwidth
  measurement (Section 2.7), including the PFTK TCP-throughput model,
* :mod:`repro.network.loganalysis` — a synthetic proxy-log substrate that
  replaces the proprietary NLANR logs, plus the analysis pipeline of §3.1,
* :mod:`repro.network.topology` — origin servers, proxy cache, and client
  cloud wiring (Figure 1).
"""

from repro.network.distributions import (
    BandwidthDistribution,
    ConstantBandwidthDistribution,
    EmpiricalBandwidthDistribution,
    NLANRBandwidthDistribution,
    UniformBandwidthDistribution,
)
from repro.network.measurement import (
    ActiveProber,
    BandwidthMeasurementLog,
    PassiveEstimator,
    PathConditions,
    pftk_throughput,
)
from repro.network.path import NetworkPath, PathRegistry
from repro.network.topology import ClientCloud, DeliveryTopology, OriginServer, ProxyNode
from repro.network.variability import (
    BandwidthVariabilityModel,
    ConstantVariability,
    LognormalRatioVariability,
    MeasuredPathVariability,
    NLANRRatioVariability,
)

__all__ = [
    "ActiveProber",
    "BandwidthDistribution",
    "BandwidthMeasurementLog",
    "BandwidthVariabilityModel",
    "ClientCloud",
    "ConstantBandwidthDistribution",
    "ConstantVariability",
    "DeliveryTopology",
    "EmpiricalBandwidthDistribution",
    "LognormalRatioVariability",
    "MeasuredPathVariability",
    "NLANRBandwidthDistribution",
    "NLANRRatioVariability",
    "NetworkPath",
    "OriginServer",
    "PassiveEstimator",
    "PathConditions",
    "PathRegistry",
    "ProxyNode",
    "UniformBandwidthDistribution",
    "pftk_throughput",
]
