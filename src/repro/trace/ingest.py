"""Access-log ingestion: real proxy logs in, columnar traces out.

The paper evaluates its policies on synthetic GISMO workloads; this module
opens the complementary path of driving the simulator from **real** proxy
access logs.  Two formats are supported, streaming line-by-line (the whole
file is never held in memory — only the accumulated columns are):

* **Squid native** ``access.log`` —
  ``time elapsed client code/status bytes method URL user hierarchy type``,
* **Common/Combined Log Format (CLF)** —
  ``host ident user [timestamp] "METHOD url PROTO" status bytes ...``
  (trailing referrer/user-agent fields of the combined format are ignored).

:func:`ingest_access_log` parses a log, filters by HTTP method and status,
maps URLs / clients / origin hosts to dense integer ids (first-seen order),
stably sorts the surviving requests by timestamp (real logs record
*completion* times, which interleave), and returns an :class:`IngestResult`
holding a :class:`~repro.trace.columnar.ColumnarTrace`, a catalog-sizing
summary, and enough per-request detail to either

* build a simulation-ready :class:`~repro.workload.gismo.Workload`
  (:meth:`IngestResult.to_workload` — object sizes from the largest
  observed transfer, durations derived from a CBR bitrate), or
* feed the Section 3.1 bandwidth analysis
  (:meth:`IngestResult.to_transfer_records` →
  :class:`~repro.network.loganalysis.ProxyLogAnalyzer`) as an alternative
  substrate to :class:`~repro.network.loganalysis.SyntheticProxyLog`.
"""

from __future__ import annotations

import re
from array import array
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, TraceFormatError
from repro.network.loganalysis import TransferRecord
from repro.trace.columnar import ColumnarTrace
from repro.units import DEFAULT_BITRATE_KBPS
from repro.workload.catalog import Catalog, MediaObject

#: Formats understood by the ingest pipeline ("auto" probes the file).
LOG_FORMATS = ("squid", "clf")

#: Smallest object size (KB) assumed when a log only shows tiny/zero
#: transfers for a URL; keeps derived durations strictly positive.
MIN_OBJECT_KB = 1.0


@dataclass(frozen=True)
class AccessLogRecord:
    """One parsed access-log line, normalised across formats.

    Attributes
    ----------
    timestamp:
        Completion time in seconds since the Unix epoch.
    client:
        Requesting client address (as logged).
    method:
        HTTP method, upper-cased.
    url:
        Requested URL (absolute for proxy logs, path-only for CLF).
    status:
        HTTP status code.
    size_bytes:
        Bytes transferred to the client.
    elapsed_ms:
        Transfer duration in milliseconds (Squid only; ``None`` for CLF).
    cache_code:
        Squid cache result code, e.g. ``TCP_MISS`` (``None`` for CLF).
    """

    timestamp: float
    client: str
    method: str
    url: str
    status: int
    size_bytes: int
    elapsed_ms: Optional[float] = None
    cache_code: Optional[str] = None

    @property
    def cache_hit(self) -> bool:
        """Whether the proxy served the object itself (Squid ``*_HIT`` codes)."""
        return self.cache_code is not None and "HIT" in self.cache_code

    @property
    def server_host(self) -> str:
        """Origin host of the URL ('' for path-only CLF requests)."""
        match = _URL_HOST_RE.match(self.url)
        return match.group("host").lower() if match else ""


_URL_HOST_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*://(?P<host>[^/?#:]+)")

#: CLF / Combined Log Format; trailing combined fields are ignored.
_CLF_RE = re.compile(
    r"^(?P<host>\S+)\s+(?P<ident>\S+)\s+(?P<user>\S+)\s+"
    r"\[(?P<timestamp>[^\]]+)\]\s+"
    r'"(?P<method>[A-Za-z]+)\s+(?P<url>\S+)(?:\s+(?P<protocol>[^"]*))?"\s+'
    r"(?P<status>\d{3})\s+(?P<size>\d+|-)"
)

#: CLF month abbreviations, mapped explicitly so parsing is independent of
#: the process locale (strptime's ``%b`` is locale-dependent).
_CLF_MONTHS = {
    "Jan": 1, "Feb": 2, "Mar": 3, "Apr": 4, "May": 5, "Jun": 6,
    "Jul": 7, "Aug": 8, "Sep": 9, "Oct": 10, "Nov": 11, "Dec": 12,
}


def _parse_clf_timestamp(text: str) -> Optional[float]:
    """Parse ``dd/Mon/yyyy:hh:mm:ss +zzzz`` to Unix seconds; None if bad."""
    try:
        day = int(text[0:2])
        month = _CLF_MONTHS[text[3:6]]
        year = int(text[7:11])
        hour = int(text[12:14])
        minute = int(text[15:17])
        second = int(text[18:20])
        offset_text = text[21:26]
        sign = {"+": 1, "-": -1}[offset_text[0]]
        offset = sign * timedelta(
            hours=int(offset_text[1:3]), minutes=int(offset_text[3:5])
        )
        moment = datetime(
            year, month, day, hour, minute, second, tzinfo=timezone(offset)
        )
    except (KeyError, ValueError, IndexError):
        return None
    return moment.timestamp()


def parse_squid_line(line: str) -> Optional[AccessLogRecord]:
    """Parse one Squid native ``access.log`` line; ``None`` if malformed."""
    parts = line.split()
    if len(parts) < 7:
        return None
    code_status = parts[3].split("/", 1)
    if len(code_status) != 2:
        return None
    try:
        timestamp = float(parts[0])
        elapsed_ms = float(parts[1])
        status = int(code_status[1])
        size_bytes = int(parts[4])
    except ValueError:
        return None
    if timestamp < 0 or elapsed_ms < 0 or size_bytes < 0:
        return None
    return AccessLogRecord(
        timestamp=timestamp,
        client=parts[2],
        method=parts[5].upper(),
        url=parts[6],
        status=status,
        size_bytes=size_bytes,
        elapsed_ms=elapsed_ms,
        cache_code=code_status[0],
    )


def parse_clf_line(line: str) -> Optional[AccessLogRecord]:
    """Parse one Common/Combined Log Format line; ``None`` if malformed."""
    match = _CLF_RE.match(line)
    if match is None:
        return None
    timestamp = _parse_clf_timestamp(match.group("timestamp"))
    if timestamp is None:
        return None
    size_field = match.group("size")
    return AccessLogRecord(
        timestamp=timestamp,
        client=match.group("host"),
        method=match.group("method").upper(),
        url=match.group("url"),
        status=int(match.group("status")),
        size_bytes=0 if size_field == "-" else int(size_field),
    )


LOG_PARSERS = {"squid": parse_squid_line, "clf": parse_clf_line}


def detect_log_format(path: Union[str, Path], probe_lines: int = 50) -> str:
    """Guess the log format by parsing the first ``probe_lines`` lines.

    The format whose parser accepts the most probed lines wins; a file no
    parser accepts at all raises :class:`~repro.exceptions.TraceFormatError`.
    """
    scores = {name: 0 for name in LOG_FORMATS}
    probed = 0
    with Path(path).open("r", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            probed += 1
            for name, parser in LOG_PARSERS.items():
                if parser(line) is not None:
                    scores[name] += 1
            if probed >= probe_lines:
                break
    best = max(LOG_FORMATS, key=scores.__getitem__)
    if probed == 0 or scores[best] == 0:
        raise TraceFormatError(
            f"{path}: could not detect log format "
            f"(no line parsed as any of {LOG_FORMATS})"
        )
    return best


def iter_access_records(
    path: Union[str, Path], log_format: str = "auto", include_text: bool = False
) -> Iterator[Tuple]:
    """Stream ``(line_number, record-or-None)`` pairs from an access log.

    ``None`` marks a malformed line so callers can count (rather than crash
    on) the occasional corrupt entry real logs contain.  Blank lines and
    ``#`` comments are skipped entirely.  With ``include_text`` the pairs
    become ``(line_number, record-or-None, stripped_line)`` triples, so a
    caller reporting malformed lines can quote the offending text without
    re-reading the file.
    """
    if log_format == "auto":
        log_format = detect_log_format(path)
    try:
        parser = LOG_PARSERS[log_format]
    except KeyError:
        raise ConfigurationError(
            f"unknown log format {log_format!r}; expected 'auto' or one of {LOG_FORMATS}"
        ) from None
    with Path(path).open("r", errors="replace") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if include_text:
                yield line_number, parser(line), line
            else:
                yield line_number, parser(line)


#: How many malformed lines :func:`ingest_access_log` quotes verbatim in the
#: summary (and in the ``max_errors`` abort message) before just counting.
MALFORMED_SAMPLE_LIMIT = 5


@dataclass
class IngestSummary:
    """Catalog-sizing and hygiene statistics of one ingested log."""

    log_format: str
    lines_total: int = 0
    lines_malformed: int = 0
    records_parsed: int = 0
    records_filtered: int = 0
    requests: int = 0
    out_of_order: int = 0
    unique_objects: int = 0
    unique_clients: int = 0
    unique_servers: int = 0
    total_kb: float = 0.0
    unique_kb: float = 0.0
    trace_duration_s: float = 0.0
    start_timestamp: float = 0.0
    end_timestamp: float = 0.0
    #: First few malformed lines, as ``"line N: <text>"`` (text truncated) —
    #: enough to diagnose a bad log without grepping it.
    malformed_samples: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, float]:
        """Flatten into a printable/serialisable dictionary."""
        return {
            "log_format": self.log_format,
            "lines_total": self.lines_total,
            "lines_malformed": self.lines_malformed,
            "malformed_samples": list(self.malformed_samples),
            "records_parsed": self.records_parsed,
            "records_filtered": self.records_filtered,
            "requests": self.requests,
            "out_of_order": self.out_of_order,
            "unique_objects": self.unique_objects,
            "unique_clients": self.unique_clients,
            "unique_servers": self.unique_servers,
            "total_gb": self.total_kb / 1024.0 / 1024.0,
            "unique_gb": self.unique_kb / 1024.0 / 1024.0,
            "trace_duration_s": self.trace_duration_s,
        }


@dataclass
class IngestResult:
    """Everything produced by :func:`ingest_access_log`."""

    trace: ColumnarTrace
    summary: IngestSummary
    #: URL → object id, in first-seen order.
    url_ids: Dict[str, int]
    #: Client address → client id, in first-seen order.
    client_ids: Dict[str, int]
    #: Origin host → server id, in first-seen order ('' for host-less CLF).
    server_ids: Dict[str, int]
    #: Largest observed transfer size per object id (KB).
    object_sizes_kb: np.ndarray
    #: Origin server id per object id.
    object_servers: np.ndarray
    #: Per-request transfer size (KB), aligned with the trace.
    request_sizes_kb: np.ndarray = field(repr=False, default=None)
    #: Per-request duration (s; 0 when the format does not record it).
    request_durations_s: np.ndarray = field(repr=False, default=None)
    #: Per-request cache-hit flag (always False for CLF).
    request_hits: np.ndarray = field(repr=False, default=None)

    def build_catalog(
        self,
        bitrate: float = DEFAULT_BITRATE_KBPS,
        value: float = 1.0,
        layers: int = 4,
    ) -> Catalog:
        """Derive a media catalog from the observed objects.

        Each URL becomes one CBR object whose size is the largest transfer
        observed for it (floored at ``MIN_OBJECT_KB``) and whose duration is
        ``size / bitrate`` — the same ``T_i * r_i`` identity the synthetic
        catalog uses, so the policies' size/bandwidth arithmetic carries
        over unchanged.
        """
        if not self.url_ids:
            raise ConfigurationError("ingested log contains no usable requests")
        objects = []
        for object_id in range(len(self.url_ids)):
            size_kb = max(float(self.object_sizes_kb[object_id]), MIN_OBJECT_KB)
            objects.append(
                MediaObject(
                    object_id=object_id,
                    duration=size_kb / bitrate,
                    bitrate=bitrate,
                    server_id=int(self.object_servers[object_id]),
                    value=value,
                    layers=layers,
                )
            )
        return Catalog(objects)

    def to_workload(
        self,
        bitrate: float = DEFAULT_BITRATE_KBPS,
        value: float = 1.0,
        layers: int = 4,
    ):
        """Package the trace + derived catalog as a simulation-ready workload."""
        # Imported lazily: repro.workload.gismo is a consumer of this
        # package (columnar generation), so a top-level import would cycle.
        from repro.workload.gismo import Workload, WorkloadConfig

        catalog = self.build_catalog(bitrate=bitrate, value=value, layers=layers)
        config = WorkloadConfig(
            num_objects=len(catalog),
            num_requests=max(len(self.trace), 1),
            num_servers=max(self.summary.unique_servers, 1),
            bitrate=bitrate,
        )
        return Workload(catalog=catalog, trace=self.trace, config=config)

    def to_transfer_records(self) -> List[TransferRecord]:
        """Adapt the ingested requests for the Section 3.1 bandwidth analysis.

        Returns records consumable by
        :class:`~repro.network.loganalysis.ProxyLogAnalyzer` — an
        alternative substrate to
        :class:`~repro.network.loganalysis.SyntheticProxyLog`.  CLF logs
        carry no transfer duration, so their records have ``duration_s=0``
        and are discarded by the analyzer's throughput filter.
        """
        times = self.trace.times_array.tolist()
        object_ids = self.trace.object_ids_array.tolist()
        sizes = self.request_sizes_kb.tolist()
        durations = self.request_durations_s.tolist()
        hits = self.request_hits.tolist()
        return [
            TransferRecord(
                timestamp=times[i],
                server_id=int(self.object_servers[object_ids[i]]),
                size_kb=sizes[i],
                duration_s=durations[i],
                cache_hit=hits[i],
            )
            for i in range(len(times))
        ]


def ingest_access_log(
    path: Union[str, Path],
    log_format: str = "auto",
    methods: Optional[Sequence[str]] = ("GET",),
    status_range: Tuple[int, int] = (100, 399),
    include_hits: bool = True,
    max_errors: Optional[int] = None,
) -> IngestResult:
    """Stream an access log into a columnar trace plus sizing summary.

    Parameters
    ----------
    path:
        The log file.  Read line-by-line; never loaded whole.
    log_format:
        ``"squid"``, ``"clf"``, or ``"auto"`` to probe the first lines.
    methods:
        HTTP methods to keep (upper-cased); ``None`` keeps every method.
    status_range:
        Inclusive ``(low, high)`` range of HTTP status codes to keep — the
        default drops errors (4xx/5xx) which carry no object payload.
    include_hits:
        When False, Squid ``*_HIT`` records are filtered out, leaving the
        miss stream (what the origin servers actually saw).
    max_errors:
        Abort with :class:`~repro.exceptions.TraceFormatError` as soon as
        more than this many lines fail to parse (``None`` tolerates any
        number).  Either way malformed lines are counted, and the first
        few are quoted in ``summary.malformed_samples``, so a slightly
        corrupt multi-gigabyte log ingests with a warning rather than a
        crash while a wrong ``log_format`` still fails fast.
    """
    if log_format == "auto":
        log_format = detect_log_format(path)
    method_set = None if methods is None else {m.upper() for m in methods}
    low_status, high_status = status_range

    timestamps = array("d")
    object_column = array("q")
    client_column = array("l")
    size_column = array("d")
    duration_column = array("d")
    hit_flags: List[bool] = []

    url_ids: Dict[str, int] = {}
    client_ids: Dict[str, int] = {}
    server_ids: Dict[str, int] = {}
    object_sizes: List[float] = []
    object_servers: List[int] = []

    if max_errors is not None and max_errors < 0:
        raise ConfigurationError(f"max_errors must be non-negative, got {max_errors}")
    summary = IngestSummary(log_format=log_format)
    malformed_samples: List[str] = []
    for line_number, record, line in iter_access_records(
        path, log_format, include_text=True
    ):
        summary.lines_total += 1
        if record is None:
            summary.lines_malformed += 1
            if len(malformed_samples) < MALFORMED_SAMPLE_LIMIT:
                text = line if len(line) <= 120 else line[:117] + "..."
                malformed_samples.append(f"line {line_number}: {text}")
                summary.malformed_samples = tuple(malformed_samples)
            if max_errors is not None and summary.lines_malformed > max_errors:
                raise TraceFormatError(
                    f"{path}: more than {max_errors} malformed {log_format} "
                    f"line(s); first offenders: "
                    + "; ".join(malformed_samples)
                )
            continue
        summary.records_parsed += 1
        if (
            (method_set is not None and record.method not in method_set)
            or not low_status <= record.status <= high_status
            or (not include_hits and record.cache_hit)
        ):
            summary.records_filtered += 1
            continue

        object_id = url_ids.get(record.url)
        if object_id is None:
            object_id = len(url_ids)
            url_ids[record.url] = object_id
            host = record.server_host
            server_id = server_ids.setdefault(host, len(server_ids))
            object_sizes.append(0.0)
            object_servers.append(server_id)
        size_kb = record.size_bytes / 1024.0
        if size_kb > object_sizes[object_id]:
            object_sizes[object_id] = size_kb

        client = client_ids.setdefault(record.client, len(client_ids))
        timestamps.append(record.timestamp)
        object_column.append(object_id)
        client_column.append(client)
        size_column.append(size_kb)
        duration_column.append(
            0.0 if record.elapsed_ms is None else record.elapsed_ms / 1000.0
        )
        hit_flags.append(record.cache_hit)

    if summary.lines_total and not summary.records_parsed:
        raise TraceFormatError(
            f"{path}: no line parsed as {log_format} format "
            f"({summary.lines_malformed} malformed)"
        )

    times = np.asarray(timestamps, dtype=np.float64)
    object_arr = np.asarray(object_column, dtype=np.int64)
    client_arr = np.asarray(client_column, dtype=np.int32)
    sizes_arr = np.asarray(size_column, dtype=np.float64)
    durations_arr = np.asarray(duration_column, dtype=np.float64)
    hits_arr = np.asarray(hit_flags, dtype=bool)

    # Real logs record completion times, which interleave across concurrent
    # transfers; a stable sort restores request order without disturbing
    # ties.
    if times.size:
        summary.out_of_order = int(np.sum(np.diff(times) < 0))
        if summary.out_of_order:
            order = np.argsort(times, kind="stable")
            times = times[order]
            object_arr = object_arr[order]
            client_arr = client_arr[order]
            sizes_arr = sizes_arr[order]
            durations_arr = durations_arr[order]
            hits_arr = hits_arr[order]
        summary.start_timestamp = float(times[0])
        summary.end_timestamp = float(times[-1])
        times = times - times[0]

    trace = ColumnarTrace(times, object_arr, client_arr)
    summary.requests = len(trace)
    summary.unique_objects = len(url_ids)
    summary.unique_clients = len(client_ids)
    summary.unique_servers = len(server_ids)
    summary.total_kb = float(sizes_arr.sum()) if sizes_arr.size else 0.0
    summary.unique_kb = float(sum(object_sizes))
    summary.trace_duration_s = trace.duration

    return IngestResult(
        trace=trace,
        summary=summary,
        url_ids=url_ids,
        client_ids=client_ids,
        server_ids=server_ids,
        object_sizes_kb=np.asarray(object_sizes, dtype=np.float64),
        object_servers=np.asarray(object_servers, dtype=np.int64),
        request_sizes_kb=sizes_arr,
        request_durations_s=durations_arr,
        request_hits=hits_arr,
    )
