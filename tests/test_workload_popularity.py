"""Tests for popularity models (Zipf, uniform, empirical)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workload.popularity import (
    EmpiricalPopularity,
    UniformPopularity,
    ZipfPopularity,
    zipf_rank_concentration,
)


class TestZipfPopularity:
    def test_probabilities_sum_to_one(self):
        probs = ZipfPopularity(0.73).probabilities(5000)
        assert probs.sum() == pytest.approx(1.0)

    def test_probabilities_decreasing_in_rank(self):
        probs = ZipfPopularity(0.73).probabilities(100)
        assert np.all(np.diff(probs) <= 0)

    def test_alpha_zero_is_uniform(self):
        probs = ZipfPopularity(0.0).probabilities(10)
        assert np.allclose(probs, 0.1)

    def test_higher_alpha_concentrates_mass(self):
        low = ZipfPopularity(0.5).probabilities(1000)
        high = ZipfPopularity(1.2).probabilities(1000)
        assert high[0] > low[0]
        assert high[:10].sum() > low[:10].sum()

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity(-0.1)

    def test_zero_objects_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity(0.73).probabilities(0)

    def test_sample_ranks_within_range(self, rng):
        ranks = ZipfPopularity(0.73).sample_ranks(50, 10_000, rng)
        assert ranks.min() >= 0
        assert ranks.max() < 50

    def test_sample_ranks_skewed_toward_low_ranks(self, rng):
        ranks = ZipfPopularity(1.0).sample_ranks(100, 20_000, rng)
        top_share = np.mean(ranks < 10)
        assert top_share > 0.35  # top 10% of objects get well over 10% of requests

    def test_expected_rates_scale_with_requests(self):
        rates = ZipfPopularity(0.73).expected_rates(100, 10_000)
        assert rates.sum() == pytest.approx(10_000)


class TestUniformPopularity:
    def test_uniform_probabilities(self):
        probs = UniformPopularity().probabilities(20)
        assert np.allclose(probs, 1.0 / 20)

    def test_zero_objects_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformPopularity().probabilities(0)


class TestEmpiricalPopularity:
    def test_normalises_weights(self):
        probs = EmpiricalPopularity([2.0, 1.0, 1.0]).probabilities()
        assert probs.tolist() == pytest.approx([0.5, 0.25, 0.25])

    def test_rejects_empty_or_negative(self):
        with pytest.raises(ConfigurationError):
            EmpiricalPopularity([])
        with pytest.raises(ConfigurationError):
            EmpiricalPopularity([1.0, -1.0])
        with pytest.raises(ConfigurationError):
            EmpiricalPopularity([0.0, 0.0])

    def test_size_mismatch_rejected(self):
        model = EmpiricalPopularity([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            model.probabilities(3)


def test_zipf_rank_concentration_monotone_in_alpha():
    low = zipf_rank_concentration(0.5, 1000, 0.1)
    high = zipf_rank_concentration(1.2, 1000, 0.1)
    assert 0.0 < low < high < 1.0


def test_zipf_rank_concentration_validates_fraction():
    with pytest.raises(ConfigurationError):
        zipf_rank_concentration(0.73, 1000, 0.0)
    with pytest.raises(ConfigurationError):
        zipf_rank_concentration(0.73, 1000, 1.5)
