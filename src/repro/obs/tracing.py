"""Structured event tracing: the JSONL :class:`TraceSink` and the
store subclass that feeds it cache admission/eviction events.

The sink is opt-in (``ObservabilityConfig.trace_path``) and write-only:
components that can emit events carry an optional ``trace`` attribute
that the simulator points at the sink for the duration of one run.  Two
filters keep trace files bounded:

* **level** — events are ``"info"`` (run boundaries, re-keys, fault
  episodes, failed fetches) or ``"debug"`` (per-object cache admissions,
  evictions, trims, retry attempts); a sink opened at ``"info"`` drops
  debug events at the emit site.
* **sampling** — ``trace_sample`` keeps a deterministic fraction of
  events *per event name* using a fixed stride over the per-name emit
  count.  Sampling never draws randomness, so tracing cannot perturb
  the simulation's RNG streams; ``run-start``/``run-end`` are exempt so
  every file stays self-delimiting.

Records are one JSON object per line with at least ``t`` (simulated
seconds), ``event``, and ``level``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.core.store import CacheStore

__all__ = ["ObservedCacheStore", "TraceSink"]

#: Numeric severity per trace level name.
_LEVELS = {"debug": 10, "info": 20}

#: Events exempt from sampling: they delimit the file.
_UNSAMPLED = frozenset({"run-start", "run-end"})


class TraceSink:
    """Filtered JSONL writer for structured simulation events."""

    def __init__(
        self, path: str, level: str = "info", sample: float = 1.0
    ) -> None:
        """Open ``path`` for writing with the given level/sampling filter.

        ``level`` is the minimum severity written (``"info"`` or
        ``"debug"``); ``sample`` is the per-event-name keep fraction in
        ``(0, 1]``.
        """
        if level not in _LEVELS:
            raise ValueError(
                f"level must be one of {tuple(_LEVELS)}, got {level!r}"
            )
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample must be in (0, 1], got {sample!r}")
        self.path = str(path)
        self._min_level = _LEVELS[level]
        self._sample = float(sample)
        self._counts: Dict[str, int] = {}
        self._handle = open(self.path, "w", encoding="utf-8")
        #: Records written / suppressed by the level+sampling filters.
        self.emitted = 0
        self.dropped = 0

    def emit(self, level: str, event: str, time: float, **fields) -> None:
        """Write one event record, subject to the level/sampling filters.

        ``time`` is simulated seconds; ``fields`` become extra JSON keys
        and must be JSON-serialisable.
        """
        if _LEVELS[level] < self._min_level:
            self.dropped += 1
            return
        if self._sample < 1.0 and event not in _UNSAMPLED:
            count = self._counts.get(event, 0) + 1
            self._counts[event] = count
            if int(count * self._sample) == int((count - 1) * self._sample):
                self.dropped += 1
                return
        record = {"t": time, "event": event, "level": level}
        record.update(fields)
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.emitted += 1

    def close(self) -> None:
        """Flush and close the trace file; safe to call more than once."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceSink":
        """Context-manager entry: the sink itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the file."""
        self.close()


class ObservedCacheStore(CacheStore):
    """A :class:`CacheStore` that traces admissions, growth, trims, and
    evictions to a :class:`TraceSink` at debug level.

    Allocation changes arrive through :meth:`set_cached_bytes`, which the
    replacement engine does not always call with a timestamp; the store
    therefore tracks a best-effort clock from the per-request
    :meth:`touch_and_bytes` / :meth:`touch` calls and stamps clock-less
    changes with the last request time seen.  The subclass changes no
    caching behaviour — byte accounting and eviction order are inherited
    unchanged — so simulated metrics are identical with or without it.
    """

    def __init__(self, capacity_kb: float, sink: TraceSink) -> None:
        """Create a store of ``capacity_kb`` KB reporting to ``sink``."""
        super().__init__(capacity_kb)
        self._sink = sink
        self._clock = 0.0

    def touch(self, object_id: int, now: float) -> None:
        """Record an access (and advance the trace clock)."""
        self._clock = now
        super().touch(object_id, now)

    def touch_and_bytes(self, object_id: int, now: float) -> float:
        """Record an access and return cached bytes (advancing the clock)."""
        self._clock = now
        return super().touch_and_bytes(object_id, now)

    def set_cached_bytes(
        self, object_id: int, target_bytes: float, now: float = 0.0
    ) -> None:
        """Apply an allocation change and trace the transition."""
        before = self.cached_bytes(object_id)
        super().set_cached_bytes(object_id, target_bytes, now)
        after = self.cached_bytes(object_id)
        if after == before:
            return
        stamp = now if now > 0.0 else self._clock
        if before == 0.0:
            event = "cache-admission"
        elif after == 0.0:
            event = "cache-eviction"
        elif after < before:
            event = "cache-trim"
        else:
            event = "cache-grow"
        self._sink.emit(
            "debug", event, stamp, object=object_id, bytes=after, prev=before
        )
