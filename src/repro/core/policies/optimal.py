"""The offline optimal cache allocation (Section 2.3).

Under static conditions (constant bandwidth, known request rates, no
replacement) the delay-minimisation problem is a *fractional knapsack*:

1. objects whose path bandwidth covers their bit-rate are never cached;
2. the remaining objects are ranked by ``λ_i / b_i``;
3. each is cached up to ``(r_i − b_i) T_i`` kilobytes, in rank order, until
   the capacity ``C`` is exhausted (the marginal object gets whatever space
   is left).

:func:`optimal_allocation` computes this allocation; :func:`optimal_average_delay`
evaluates the resulting expected service delay analytically (the objective
the paper's formalisation minimises); and :class:`StaticAllocationPolicy`
wraps a fixed allocation so the trace-driven simulator can run the optimal
(or any externally computed) cache content without replacement.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.frequency import FrequencyTracker
from repro.core.store import CacheStore
from repro.exceptions import ConfigurationError
from repro.units import positive_part
from repro.workload.catalog import Catalog, MediaObject


def optimal_allocation(
    catalog: Catalog,
    bandwidths: Mapping[int, float],
    request_rates: Mapping[int, float],
    capacity_kb: float,
) -> Dict[int, float]:
    """Solve the fractional knapsack of Section 2.3.

    Parameters
    ----------
    catalog:
        The media-object catalog.
    bandwidths:
        Map of object id to the (constant) bandwidth ``b_i`` of the path to
        that object's origin server, in KB/s.
    request_rates:
        Map of object id to the known request arrival rate ``λ_i``.
    capacity_kb:
        Cache capacity ``C`` in KB.

    Returns
    -------
    dict
        Map of object id to cached bytes ``x_i``; objects allocated zero
        bytes are omitted.
    """
    if capacity_kb < 0:
        raise ConfigurationError(f"capacity must be non-negative, got {capacity_kb}")

    candidates = []
    for obj in catalog:
        bandwidth = float(bandwidths.get(obj.object_id, 0.0))
        rate = float(request_rates.get(obj.object_id, 0.0))
        if bandwidth <= 0:
            raise ConfigurationError(
                f"object {obj.object_id}: bandwidth must be positive, got {bandwidth}"
            )
        max_useful = positive_part(obj.bitrate - bandwidth) * obj.duration
        if max_useful <= 0 or rate <= 0:
            continue
        candidates.append((rate / bandwidth, obj.object_id, max_useful))

    candidates.sort(key=lambda item: item[0], reverse=True)

    allocation: Dict[int, float] = {}
    remaining = float(capacity_kb)
    for _, object_id, max_useful in candidates:
        if remaining <= 0:
            break
        granted = min(max_useful, remaining)
        allocation[object_id] = granted
        remaining -= granted
    return allocation


def optimal_average_delay(
    catalog: Catalog,
    bandwidths: Mapping[int, float],
    request_rates: Mapping[int, float],
    allocation: Mapping[int, float],
) -> float:
    """Expected average service delay under a given static allocation.

    Evaluates the paper's objective
    ``(1 / Σλ) Σ_i λ_i [T_i r_i − T_i b_i − x_i]+ / b_i`` (Section 2.2).
    """
    total_rate = sum(float(rate) for rate in request_rates.values())
    if total_rate <= 0:
        return 0.0
    weighted_delay = 0.0
    for obj in catalog:
        rate = float(request_rates.get(obj.object_id, 0.0))
        if rate <= 0:
            continue
        bandwidth = float(bandwidths.get(obj.object_id, 0.0))
        cached = float(allocation.get(obj.object_id, 0.0))
        weighted_delay += rate * obj.startup_delay(bandwidth, cached)
    return weighted_delay / total_rate


class StaticAllocationPolicy:
    """A non-adaptive policy that installs a fixed allocation and never evicts.

    The class quacks like :class:`~repro.core.policies.base.CachePolicy`
    (it exposes ``name``, ``allows_partial``, ``frequencies``, and
    ``on_request``) so the simulator can run it interchangeably, but its
    ``on_request`` only records frequencies — the cache content is whatever
    :meth:`install` placed there, which is how the paper's "optimal solution
    for populating caches" is evaluated.
    """

    allows_partial = True

    def __init__(self, allocation: Mapping[int, float], name: str = "OPT"):
        self.allocation = {int(oid): float(bytes_) for oid, bytes_ in allocation.items()}
        self.name = name
        self.frequencies = FrequencyTracker()

    def install(self, store: CacheStore, catalog: Optional[Catalog] = None) -> None:
        """Populate ``store`` with the allocation (clearing it first)."""
        store.clear()
        for object_id, cached_bytes in self.allocation.items():
            if cached_bytes <= 0:
                continue
            if catalog is not None:
                cached_bytes = min(cached_bytes, catalog.get(object_id).size)
            store.set_cached_bytes(object_id, cached_bytes)

    def on_request(
        self, obj: MediaObject, bandwidth: float, now: float, store: CacheStore
    ) -> None:
        """Record the request; never changes the cache content."""
        self.frequencies.record(obj.object_id, now)
        store.touch(obj.object_id, now)

    def reset(self) -> None:
        """Forget recorded frequencies (the installed allocation is kept)."""
        self.frequencies.reset()
