"""Dependency-free ASCII plotting of experiment series.

The evaluation figures of the paper are line charts (metric vs cache size,
one line per policy) and histograms (bandwidth and ratio distributions).
This module renders both as plain text so experiment output can be inspected
directly in a terminal or pasted into EXPERIMENTS.md without a plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.exceptions import ConfigurationError
from repro.sim.runner import SweepResult

#: Characters used to distinguish the series of a line chart.
SERIES_MARKERS = "ox+*#@%&"


def ascii_line_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one or more y-series against shared x-values.

    Each series is drawn with its own marker; the legend maps markers back
    to series names.  Values are scaled to the joint y-range; a constant
    chart (all values equal) is drawn as a flat line in the middle.
    """
    if not x_values:
        raise ConfigurationError("x_values must be non-empty")
    if not series:
        raise ConfigurationError("series must be non-empty")
    if width < 10 or height < 4:
        raise ConfigurationError("chart must be at least 10x4 characters")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points, expected {len(x_values)}"
            )

    all_values = [value for values in series.values() for value in values]
    y_min, y_max = min(all_values), max(all_values)
    y_span = y_max - y_min
    x_min, x_max = min(x_values), max(x_values)
    x_span = x_max - x_min

    grid = [[" " for _ in range(width)] for _ in range(height)]

    def column(x: float) -> int:
        if x_span == 0:
            return width // 2
        return int(round((x - x_min) / x_span * (width - 1)))

    def row(y: float) -> int:
        if y_span == 0:
            return height // 2
        return height - 1 - int(round((y - y_min) / y_span * (height - 1)))

    for series_index, (name, values) in enumerate(series.items()):
        marker = SERIES_MARKERS[series_index % len(SERIES_MARKERS)]
        for x, y in zip(x_values, values):
            grid[row(y)][column(x)] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    label_width = max(len(top_label), len(bottom_label))
    for index, grid_row in enumerate(grid):
        if index == 0:
            label = top_label.rjust(label_width)
        elif index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(grid_row)}")
    x_axis = " " * label_width + " +" + "-" * width
    lines.append(x_axis)
    lines.append(
        " " * (label_width + 2)
        + f"{x_min:.4g}".ljust(width - 10)
        + f"{x_max:.4g}".rjust(10)
    )
    legend = "   ".join(
        f"{SERIES_MARKERS[i % len(SERIES_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_histogram(
    bin_edges: Sequence[float],
    counts: Sequence[float],
    width: int = 50,
    max_rows: int = 20,
    title: str = "",
) -> str:
    """Render a histogram as horizontal bars, one row per (merged) bin."""
    if len(bin_edges) != len(counts) + 1:
        raise ConfigurationError(
            f"expected {len(counts) + 1} bin edges, got {len(bin_edges)}"
        )
    if not counts:
        raise ConfigurationError("counts must be non-empty")
    if width < 5 or max_rows < 1:
        raise ConfigurationError("histogram must be at least 5 wide and 1 row tall")

    # Merge adjacent bins so at most max_rows rows are drawn.
    merge = max(1, -(-len(counts) // max_rows))  # ceil division
    merged_counts: List[float] = []
    merged_labels: List[str] = []
    for start in range(0, len(counts), merge):
        stop = min(start + merge, len(counts))
        merged_counts.append(float(sum(counts[start:stop])))
        merged_labels.append(f"[{bin_edges[start]:.4g}, {bin_edges[stop]:.4g})")

    peak = max(merged_counts)
    label_width = max(len(label) for label in merged_labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, count in zip(merged_labels, merged_counts):
        bar_length = 0 if peak == 0 else int(round(count / peak * width))
        lines.append(f"{label.rjust(label_width)} | {'#' * bar_length} {count:.0f}")
    return "\n".join(lines)


def sweep_chart(sweep: SweepResult, metric_name: str, title: str = "", **kwargs) -> str:
    """Convenience wrapper: chart one metric of a sweep, one line per policy."""
    series = {
        policy: sweep.series(policy, metric_name) for policy in sweep.policies()
    }
    return ascii_line_chart(
        sweep.parameter_values,
        series,
        title=title or f"{metric_name} vs {sweep.parameter_name}",
        **kwargs,
    )
