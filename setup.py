"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that
editable installs (``pip install -e .``) work in offline environments whose
setuptools predates native PEP 660 wheel support.
"""

from setuptools import setup

setup()
